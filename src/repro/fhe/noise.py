"""Noise-budget estimation: the bookkeeping behind Fig. 2.

CKKS noise is what bounds multiplicative depth: every operation adds or
amplifies error, rescaling trades modulus for noise headroom, and when the
chain is exhausted only bootstrapping restores budget.  This module
provides

* :func:`measure_noise_bits` - the *ground truth*: given the secret key,
  the actual integer-domain error of a ciphertext relative to a reference
  plaintext (what a library developer uses to validate parameters);
* :class:`NoiseBudget` - a static estimator tracking worst-case noise bits
  through a computation, in the style of library parameter planners.  The
  simulator does not need it (levels are tracked structurally), but users
  sizing their own programs do.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2, sqrt

import numpy as np

from repro.fhe.ckks import Ciphertext, CkksContext, SecretKey
from repro.reliability.errors import NoiseBudgetExhaustedError


def measure_noise_bits(ctx: CkksContext, sk: SecretKey, ct: Ciphertext,
                       reference) -> float:
    """log2 of the max integer-domain error vs the expected slot values."""
    expected = ctx.encode(np.asarray(reference), level=ct.level,
                          scale=ct.scale)
    actual = ctx.decrypt_poly(sk, ct)
    diff = actual - expected.poly.to_coeff()
    mags = np.array([abs(int(v)) for v in diff.to_integers()], dtype=float)
    return float(log2(mags.max() + 1))


def budget_bits(ct: Ciphertext) -> float:
    """Remaining headroom: log2(Q) - log2(scale) for the live basis."""
    return ct.basis.log_modulus - log2(ct.scale)


@dataclass
class NoiseBudget:
    """Worst-case noise tracker for parameter planning (Fig. 2's curve).

    Tracks the estimated error magnitude (in bits, integer domain) and the
    live modulus; ``headroom`` hitting zero means decryption failure - the
    moment bootstrapping becomes mandatory.
    """

    degree: int
    modulus_bits_per_level: int
    levels: int
    sigma: float = 3.2
    noise_bits: float = 0.0

    # Calibrated against measure_noise_bits ground truth (see the property
    # test in tests/fhe/test_noise.py): worst-case margins, in bits, on top
    # of the respective analytic floors.
    PMULT_MARGIN_BITS = 4.0
    REFRESH_MARGIN_BITS = 10.0

    def __post_init__(self):
        if self.noise_bits == 0.0:
            # Fresh encryption noise ~ sigma * sqrt(N)-ish.
            self.noise_bits = log2(8 * self.sigma * sqrt(self.degree))

    @property
    def log_q(self) -> float:
        return self.levels * self.modulus_bits_per_level

    @property
    def headroom_bits(self) -> float:
        return max(0.0, self.log_q - self.noise_bits)

    @property
    def keyswitch_floor_bits(self) -> float:
        """Noise floor of one keyswitch / rescale-rounding, in bits."""
        return log2(8 * self.sigma * sqrt(self.degree))

    def clone(self) -> "NoiseBudget":
        return NoiseBudget(
            degree=self.degree,
            modulus_bits_per_level=self.modulus_bits_per_level,
            levels=self.levels, sigma=self.sigma,
            noise_bits=self.noise_bits,
        )

    def multiply(self, scale_bits: float | None = None) -> "NoiseBudget":
        """ct x ct multiply + rescale: noise grows by ~scale_bits' worth of
        message energy, then one level is spent."""
        scale_bits = scale_bits or self.modulus_bits_per_level
        if self.levels <= 1:
            raise NoiseBudgetExhaustedError(
                "budget exhausted: bootstrap required", levels=self.levels)
        # Multiplication roughly doubles relative error and rescale trims
        # modulus; worst case noise after rescale ~ old + keyswitch floor.
        self.noise_bits = max(self.noise_bits + 1,
                              log2(sqrt(self.degree) * self.sigma * 8))
        self.levels -= 1
        return self

    def rotate(self) -> "NoiseBudget":
        """Rotation: additive keyswitch noise, no level spent."""
        ks = log2(sqrt(self.degree) * self.sigma * 8)
        self.noise_bits = max(self.noise_bits, ks) + 0.1
        return self

    # -- fine-grained ops, used by CkksContext budget threading ------------

    def add(self) -> "NoiseBudget":
        """ct + ct (or + pt): worst case, error magnitudes sum."""
        self.noise_bits += 1
        return self

    def keyswitch(self) -> "NoiseBudget":
        """Alias of :meth:`rotate` for rotation/conjugation threading."""
        return self.rotate()

    def cmult(self) -> "NoiseBudget":
        """ct x ct multiply *without* the rescale: the integer-domain error
        scales by the operand scale (~one level of bits) plus relin noise."""
        self.noise_bits = max(
            self.noise_bits + self.modulus_bits_per_level + 1,
            self.keyswitch_floor_bits,
        )
        return self

    def pmult(self) -> "NoiseBudget":
        """Plaintext multiply + rescale at a targeted scale: the relative
        error is roughly preserved; rounding adds the floor."""
        self.noise_bits = (
            max(self.noise_bits, self.keyswitch_floor_bits)
            + self.PMULT_MARGIN_BITS
        )
        if self.levels > 1:
            self.levels -= 1
        return self

    def rescale_op(self) -> "NoiseBudget":
        """Standalone rescale: divides the error by ~2^modulus_bits, floored
        at the rounding noise; one level is spent."""
        self.noise_bits = max(
            self.noise_bits - self.modulus_bits_per_level,
            self.keyswitch_floor_bits,
        )
        if self.levels > 1:
            self.levels -= 1
        return self

    def refresh(self, levels: int) -> "NoiseBudget":
        """Bootstrap: levels restored, noise reset to the refresh floor."""
        self.levels = levels
        self.noise_bits = self.keyswitch_floor_bits + self.REFRESH_MARGIN_BITS
        return self

    def depth_capacity(self) -> int:
        """How many more multiplies fit before exhaustion."""
        return max(0, self.levels - 1)

    def trace(self, multiplies: int) -> list[float]:
        """Fig. 2-style budget-over-time series for ``multiplies`` ops."""
        out = [self.headroom_bits]
        for _ in range(multiplies):
            if self.levels <= 1:
                break
            self.multiply()
            out.append(self.headroom_bits)
        return out
