"""Random samplers used by CKKS key generation and encryption.

Also home of the software analogue of the paper's KSHGen insight: the
uniform ("a") half of every public key and keyswitch hint is pseudorandom,
so it can be regenerated from a 128-bit seed instead of being stored.  The
hardware KSHGen unit does this with a Keccak-based PRNG plus rejection
sampling (Sec. 5.2); here :func:`seeded_uniform_poly` plays that role with
numpy's Philox counter PRNG.  A faithful model of the rejection-sampling
pipeline itself (buffers, rejection probability) lives in
``repro.core.kshgen``.
"""

from __future__ import annotations

import numpy as np

from repro.fhe.poly import EVAL, RnsPoly
from repro.fhe.rns import RnsBasis
from repro.obs import collector as obs
from repro.reliability.errors import ParameterError

ERROR_SIGMA = 3.2  # standard deviation of the LWE error, per the HE standard


def ternary_secret(
    degree: int, rng: np.random.Generator, hamming_weight: int | None = None
) -> np.ndarray:
    """Sample a ternary secret key in {-1, 0, 1}^N.

    ``hamming_weight=None`` gives a dense (non-sparse) key, the setting the
    paper uses to maximize bootstrapping precision (Sec. 8, citing Bossuat
    et al.).  A sparse key with the given Hamming weight is also supported,
    since it keeps the EvalMod range small at toy parameters.
    """
    if hamming_weight is None:
        return rng.integers(-1, 2, size=degree, dtype=np.int64)
    if not 0 < hamming_weight <= degree:
        raise ParameterError("hamming weight out of range",
                             hamming_weight=hamming_weight, degree=degree)
    coeffs = np.zeros(degree, dtype=np.int64)
    support = rng.choice(degree, size=hamming_weight, replace=False)
    coeffs[support] = rng.choice(np.array([-1, 1]), size=hamming_weight)
    return coeffs


def gaussian_error(
    degree: int, rng: np.random.Generator, sigma: float = ERROR_SIGMA
) -> np.ndarray:
    """Rounded-Gaussian error polynomial coefficients."""
    return np.rint(rng.normal(0.0, sigma, size=degree)).astype(np.int64)


def error_poly(
    basis: RnsBasis, degree: int, rng: np.random.Generator,
    sigma: float = ERROR_SIGMA,
) -> RnsPoly:
    """A small error as an EVAL-domain RnsPoly over ``basis``."""
    return RnsPoly.from_integers(basis, gaussian_error(degree, rng, sigma), EVAL)


# KSHGen stream cache: (moduli, degree, seed, stream) -> RnsPoly.  The
# expansion is deterministic, so the result is a pure function of the key -
# ARK's inter-operation key reuse applied to the PRNG streams themselves.
# Bounded FIFO so long-running servers with many hints cannot grow without
# limit; entries are immutable by convention (consumers copy before writing).
_STREAM_CACHE: dict[tuple, RnsPoly] = {}
_STREAM_CACHE_MAX = 256


def seeded_uniform_poly(basis: RnsBasis, degree: int, seed, stream: int) -> RnsPoly:
    """Deterministically expand (seed, stream) into a uniform poly over basis.

    This is the storage/bandwidth saving the KSHGen unit provides: callers
    keep the seed and regenerate the uniform half of a hint on demand.  The
    same (seed, stream) pair always yields the same polynomial, which is the
    property keyswitch hints rely on - and what makes the keyed cache above
    sound: repeated expansions are lookups, not PRNG work.
    """
    key = (basis.moduli, degree, seed, stream)
    poly = _STREAM_CACHE.get(key)
    if poly is not None:
        obs.count("fhe.cache.kshgen.hit")
        return poly
    obs.count("fhe.cache.kshgen.miss")
    rng = np.random.Generator(np.random.Philox(key=seed, counter=[0, 0, 0, stream]))
    poly = RnsPoly.uniform_random(basis, degree, rng, EVAL)
    if len(_STREAM_CACHE) >= _STREAM_CACHE_MAX:
        _STREAM_CACHE.pop(next(iter(_STREAM_CACHE)))
    _STREAM_CACHE[key] = poly
    return poly
