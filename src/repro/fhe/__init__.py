"""Functional CKKS substrate used and accelerated by CraterLake.

This package implements, in pure Python/numpy, every algorithm the paper's
hardware accelerates: RNS polynomial arithmetic over NTT-friendly 28-bit
primes, the CKKS scheme (encode/encrypt/add/mult/rotate/rescale), standard
and boosted (t-digit hybrid) keyswitching, seeded keyswitch hints (the
software analogue of the KSHGen unit), BSGS linear transforms, polynomial
evaluation, and fully packed bootstrapping.
"""

from repro.fhe.bgv import BgvCiphertext, BgvContext, BgvParams
from repro.fhe.bootstrap import BootstrapConfig, Bootstrapper
from repro.fhe.ckks import (
    Ciphertext,
    CkksContext,
    CkksParams,
    Plaintext,
    SecretKey,
)
from repro.fhe.encoder import CkksEncoder
from repro.fhe.keyswitch import (
    KeySwitchHint,
    boosted_keyswitch,
    digit_bases,
    generate_hint,
    standard_keyswitch,
)
from repro.fhe.hoisting import HoistedRotator, hoisted_rotations
from repro.fhe.linear import LinearTransform, RealLinearTransform
from repro.fhe.noise import NoiseBudget, budget_bits, measure_noise_bits
from repro.fhe.ntt import NttContext
from repro.fhe.poly import RnsPoly
from repro.fhe.polyeval import evaluate_chebyshev, evaluate_polynomial
from repro.fhe.primes import find_ntt_primes, is_prime
from repro.fhe.rns import RnsBasis
from repro.fhe.security import (
    SecurityEstimator,
    ciphertext_megabytes,
    hint_megabytes,
    max_log_q_for_security,
    security_bits,
)

__all__ = [
    "BgvCiphertext",
    "BgvContext",
    "BgvParams",
    "BootstrapConfig",
    "Bootstrapper",
    "Ciphertext",
    "CkksContext",
    "CkksParams",
    "CkksEncoder",
    "KeySwitchHint",
    "HoistedRotator",
    "LinearTransform",
    "NoiseBudget",
    "NttContext",
    "Plaintext",
    "RealLinearTransform",
    "RnsBasis",
    "RnsPoly",
    "SecretKey",
    "SecurityEstimator",
    "boosted_keyswitch",
    "ciphertext_megabytes",
    "digit_bases",
    "evaluate_chebyshev",
    "evaluate_polynomial",
    "find_ntt_primes",
    "generate_hint",
    "budget_bits",
    "hint_megabytes",
    "hoisted_rotations",
    "measure_noise_bits",
    "is_prime",
    "max_log_q_for_security",
    "security_bits",
    "standard_keyswitch",
]
