"""Residue number system (RNS) bases and base conversion.

A ciphertext modulus Q = q_1 * ... * q_L is represented by the tuple of
28-bit primes; a wide coefficient x mod Q is stored as its residues
(x mod q_1, ..., x mod q_L).  The key kernel of boosted keyswitching is
``changeRNSBase`` (Listing 1 of the paper): re-expressing residues in a
different basis using only multiply-accumulate operations.  CraterLake's CRB
unit spatially unrolls exactly the loop nest implemented here.

Two conversions are provided:

* :meth:`RnsBasis.convert_approx` - the fast (HPS-style) floating-point-free
  conversion used inside keyswitching.  It computes
  ``y_j = sum_i [x_i * (Q/q_i)^{-1}]_{q_i} * (Q/q_i) mod p_j`` which equals
  ``x + a*Q (mod p_j)`` for a small integer ``a < L``.  The extra multiple of
  Q is absorbed by CKKS noise, exactly as in HEAAN/Lattigo/SEAL.
* :meth:`RnsBasis.convert_exact` - CRT reconstruction through Python big
  integers; used by the encoder, decryption and tests.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.obs import collector as obs
from repro.reliability.errors import NoiseBudgetExhaustedError, ParameterError


class RnsBasis:
    """An ordered tuple of coprime NTT-friendly moduli."""

    def __init__(self, moduli):
        moduli = tuple(int(q) for q in moduli)
        if not moduli:
            raise ParameterError("an RNS basis needs at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ParameterError("moduli must be distinct")
        self.moduli = moduli
        # ARK-style reuse caches: constant matrices and scalar-inverse
        # columns are pure functions of the bases involved, so they are
        # computed once per (basis, key) and replayed on every keyswitch.
        self._conv_cache: dict[tuple[int, ...], np.ndarray] = {}
        self._inv_cache: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.moduli)

    def __iter__(self):
        return iter(self.moduli)

    def __getitem__(self, idx):
        got = self.moduli[idx]
        return RnsBasis(got) if isinstance(idx, slice) else got

    def __eq__(self, other) -> bool:
        return isinstance(other, RnsBasis) and self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(self.moduli)

    def __repr__(self) -> str:
        return f"RnsBasis(L={len(self)}, log_q={self.log_modulus:.1f})"

    @cached_property
    def modulus(self) -> int:
        """The wide modulus Q as a Python integer."""
        q = 1
        for qi in self.moduli:
            q *= qi
        return q

    @cached_property
    def log_modulus(self) -> float:
        """log2(Q); the quantity that, with N, determines security."""
        return float(sum(np.log2(q) for q in self.moduli))

    @cached_property
    def _q_hats(self) -> tuple[int, ...]:
        """Q / q_i for each i (big integers)."""
        q = self.modulus
        return tuple(q // qi for qi in self.moduli)

    @cached_property
    def _q_hat_invs(self) -> tuple[int, ...]:
        """(Q / q_i)^{-1} mod q_i for each i."""
        return tuple(
            pow(h % qi, qi - 2, qi) for h, qi in zip(self._q_hats, self.moduli)
        )

    @cached_property
    def moduli_col(self) -> np.ndarray:
        """The moduli as a (L, 1) uint64 column, for limb-stacked kernels."""
        return np.array(self.moduli, dtype=np.uint64)[:, None]

    @cached_property
    def _q_hat_inv_col(self) -> np.ndarray:
        """(Q/q_i)^{-1} mod q_i as a (L, 1) uint64 column."""
        return np.array(self._q_hat_invs, dtype=np.uint64)[:, None]

    @cached_property
    def rescale_inv_col(self) -> np.ndarray:
        """q_last^{-1} mod q_i for i < L-1, as a (L-1, 1) column.

        The per-limb constant the CKKS rescale multiplies by; computed once
        per basis instead of one Python ``pow()`` per limb per rescale.
        """
        q_last = self.moduli[-1]
        return np.array(
            [pow(q_last % qi, qi - 2, qi) for qi in self.moduli[:-1]],
            dtype=np.uint64,
        )[:, None]

    def scalar_inverse_col(self, value: int) -> np.ndarray:
        """``value^{-1} mod q_i`` for every limb, as a cached (L, 1) column.

        Used by ModDown (P^{-1} over Q) and any other per-limb scalar
        division; keyed by ``value`` so repeated keyswitches reuse it.
        """
        col = self._inv_cache.get(value)
        if col is None:
            col = np.array(
                [pow(value % qi, qi - 2, qi) for qi in self.moduli],
                dtype=np.uint64,
            )[:, None]
            self._inv_cache[value] = col
        return col

    def scalar_residue_col(self, value: int) -> np.ndarray:
        """``value mod q_i`` for every limb, as a (L, 1) uint64 column."""
        return np.array([value % qi for qi in self.moduli],
                        dtype=np.uint64)[:, None]

    def extend(self, other: "RnsBasis") -> "RnsBasis":
        overlap = set(self.moduli) & set(other.moduli)
        if overlap:
            raise ParameterError(f"bases share moduli {sorted(overlap)}")
        return RnsBasis(self.moduli + other.moduli)

    def drop_last(self, count: int = 1) -> "RnsBasis":
        if count >= len(self):
            raise NoiseBudgetExhaustedError(
                "cannot drop every modulus", level=len(self), dropping=count)
        return RnsBasis(self.moduli[: len(self) - count])

    # ------------------------------------------------------------------
    # Residue <-> integer conversions (exact, big-int; used at the edges).
    # ------------------------------------------------------------------

    def to_residues(self, values) -> np.ndarray:
        """Integers (any size, possibly negative) -> residue matrix (L, N).

        Machine-width integer input (the common case: encoder output,
        error/secret samples) is reduced for all limbs in one broadcast
        modulo; arbitrary-precision input falls back to per-limb big-int
        reduction.
        """
        if isinstance(values, np.ndarray):
            # Only a caller-built ndarray takes the vectorized path: the
            # caller chose the dtype, so it is trusted to be lossless.
            # (np.asarray on a plain list of large Python ints silently
            # promotes to float64 or wraps through int64 - lists always
            # go through the exact big-int loop below.)
            if np.issubdtype(values.dtype, np.unsignedinteger):
                # Non-negative by construction: broadcast modulo in uint64.
                return values[None, :].astype(np.uint64) % self.moduli_col
            if np.issubdtype(values.dtype, np.signedinteger):
                # Broadcast (1, N) % (L, 1): numpy's % matches Python's
                # sign convention, so negatives land in [0, q) as required.
                cols = self.moduli_col.astype(np.int64)
                return (values[None, :].astype(np.int64) % cols).astype(np.uint64)
        vals = np.asarray(values, dtype=object)
        out = np.empty((len(self), vals.shape[0]), dtype=np.uint64)
        for i, qi in enumerate(self.moduli):
            out[i] = (vals % qi).astype(np.uint64)
        return out

    def to_integers(self, residues: np.ndarray, centered: bool = True) -> np.ndarray:
        """Residue matrix (L, N) -> object array of integers via CRT.

        With ``centered`` the result is lifted to (-Q/2, Q/2], which is how
        decryption recovers signed plaintext coefficients.
        """
        q = self.modulus
        acc = np.zeros(residues.shape[1], dtype=object)
        for i in range(len(self)):
            weight = self._q_hats[i] * self._q_hat_invs[i] % q
            acc = (acc + residues[i].astype(object) * weight) % q
        if centered:
            half = q // 2
            acc = np.where(acc > half, acc - q, acc)
        return acc

    # ------------------------------------------------------------------
    # Fast base conversion: the changeRNSBase kernel (Listing 1).
    # ------------------------------------------------------------------

    def conversion_constants(self, dest: "RnsBasis") -> np.ndarray:
        """The constant matrix C[src][dest] = (Q/q_src) mod p_dest.

        These are exactly the ``constant[srcModIdx][destModIdx]`` values that
        Listing 1's changeRNSBase multiplies by, and the values held in the
        CRB unit's constant registers - which is also why the matrix is
        cached per destination basis here: the registers are loaded once and
        reused across every keyswitch at this level.
        """
        return self._conversion_tables(dest)[0]

    def _conversion_tables(
        self, dest: "RnsBasis"
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached (constants, dest moduli column, Q mod p_dest column)."""
        cached = self._conv_cache.get(dest.moduli)
        if cached is not None:
            obs.count("fhe.cache.conversion.hit")
            return cached
        obs.count("fhe.cache.conversion.miss")
        c = np.empty((len(self), len(dest)), dtype=np.uint64)
        for i, q_hat in enumerate(self._q_hats):
            for j, pj in enumerate(dest.moduli):
                c[i, j] = q_hat % pj
        dest_col = np.array(dest.moduli, dtype=np.uint64)[:, None]
        qmod_col = np.array(
            [self.modulus % pj for pj in dest.moduli], dtype=np.uint64
        )[:, None]
        # 16-bit halves of the transposed constant matrix: the MAC in
        # convert_approx accumulates hi/lo partial dot products without any
        # per-term reduction (terms stay < 2^47, so thousands of source
        # limbs fit in uint64) and reduces once per destination row.
        c_t = np.ascontiguousarray(c.T)
        mask = np.uint64(0xFFFF)
        tables = (c, dest_col, qmod_col,
                  c_t >> np.uint64(16), c_t & mask)
        self._conv_cache[dest.moduli] = tables
        return tables

    def convert_approx(
        self, residues: np.ndarray, dest: "RnsBasis", correct: bool = True
    ) -> np.ndarray:
        """Fast base conversion of (L, N) residues into basis ``dest``.

        Structure mirrors Listing 1: scale each source residue by
        (Q/q_i)^{-1} mod q_i, then multiply-accumulate rows against the
        constant matrix.  The accumulation over source moduli is what the
        CRB unit buffers on chip.

        With ``correct`` (the HPS floating-point trick used by production
        RNS implementations), the integer overflow count
        v = round(sum_i scaled_i / q_i) is estimated in double precision
        and v*Q subtracted, so the result is x + a*Q with |a| <= 1 instead
        of 0 <= a < L - an order-of-magnitude keyswitch-noise reduction.
        """
        if residues.shape[0] != len(self):
            raise ParameterError(
                "residue count does not match basis size",
                rows=residues.shape[0], basis=len(self),
            )
        # Limb-batched scaling: one broadcast multiply for all source rows.
        scaled = residues * self._q_hat_inv_col % self.moduli_col
        overflow = None
        if correct:
            # The float accumulation stays a sequential per-row loop on
            # purpose: summation order affects the final ulp, and the
            # rounded overflow estimate must stay bit-identical to the
            # historical kernel (each row op is still N-vectorized).
            fraction = np.zeros(residues.shape[1], dtype=np.float64)
            for i, qi in enumerate(self.moduli):
                fraction += scaled[i].astype(np.float64) / qi
            overflow = np.rint(fraction).astype(np.uint64)
        _, dest_col, qmod_col, c_hi, c_lo = self._conversion_tables(dest)
        # Division-free MAC over every destination modulus at once.  The
        # constants are split into 16-bit halves, so hi/lo partial dot
        # products accumulate exactly in uint64 (terms < 2^47, far more
        # source limbs than any basis has before overflow) and the whole
        # matrix-vector product costs two integer matmuls plus two
        # reductions per destination row instead of one division per term.
        # Exact integer arithmetic ends at the same canonical residue, so
        # the result is bit-identical to the per-term-reduced kernel.
        hi = c_hi @ scaled
        lo = c_lo @ scaled
        acc = ((hi % dest_col << np.uint64(16)) + lo) % dest_col
        if correct:
            acc = (
                acc + (dest_col - overflow[None, :] % dest_col
                       * qmod_col % dest_col)
            ) % dest_col
        return acc

    def convert_exact(self, residues: np.ndarray, dest: "RnsBasis") -> np.ndarray:
        """Exact (centered) base conversion through big-int CRT; test oracle."""
        values = self.to_integers(residues, centered=True)
        return dest.to_residues(values)
