"""Residue number system (RNS) bases and base conversion.

A ciphertext modulus Q = q_1 * ... * q_L is represented by the tuple of
28-bit primes; a wide coefficient x mod Q is stored as its residues
(x mod q_1, ..., x mod q_L).  The key kernel of boosted keyswitching is
``changeRNSBase`` (Listing 1 of the paper): re-expressing residues in a
different basis using only multiply-accumulate operations.  CraterLake's CRB
unit spatially unrolls exactly the loop nest implemented here.

Two conversions are provided:

* :meth:`RnsBasis.convert_approx` - the fast (HPS-style) floating-point-free
  conversion used inside keyswitching.  It computes
  ``y_j = sum_i [x_i * (Q/q_i)^{-1}]_{q_i} * (Q/q_i) mod p_j`` which equals
  ``x + a*Q (mod p_j)`` for a small integer ``a < L``.  The extra multiple of
  Q is absorbed by CKKS noise, exactly as in HEAAN/Lattigo/SEAL.
* :meth:`RnsBasis.convert_exact` - CRT reconstruction through Python big
  integers; used by the encoder, decryption and tests.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.reliability.errors import NoiseBudgetExhaustedError, ParameterError


class RnsBasis:
    """An ordered tuple of coprime NTT-friendly moduli."""

    def __init__(self, moduli):
        moduli = tuple(int(q) for q in moduli)
        if not moduli:
            raise ParameterError("an RNS basis needs at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ParameterError("moduli must be distinct")
        self.moduli = moduli

    def __len__(self) -> int:
        return len(self.moduli)

    def __iter__(self):
        return iter(self.moduli)

    def __getitem__(self, idx):
        got = self.moduli[idx]
        return RnsBasis(got) if isinstance(idx, slice) else got

    def __eq__(self, other) -> bool:
        return isinstance(other, RnsBasis) and self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(self.moduli)

    def __repr__(self) -> str:
        return f"RnsBasis(L={len(self)}, log_q={self.log_modulus:.1f})"

    @cached_property
    def modulus(self) -> int:
        """The wide modulus Q as a Python integer."""
        q = 1
        for qi in self.moduli:
            q *= qi
        return q

    @cached_property
    def log_modulus(self) -> float:
        """log2(Q); the quantity that, with N, determines security."""
        return float(sum(np.log2(q) for q in self.moduli))

    @cached_property
    def _q_hats(self) -> tuple[int, ...]:
        """Q / q_i for each i (big integers)."""
        q = self.modulus
        return tuple(q // qi for qi in self.moduli)

    @cached_property
    def _q_hat_invs(self) -> tuple[int, ...]:
        """(Q / q_i)^{-1} mod q_i for each i."""
        return tuple(
            pow(h % qi, qi - 2, qi) for h, qi in zip(self._q_hats, self.moduli)
        )

    def extend(self, other: "RnsBasis") -> "RnsBasis":
        overlap = set(self.moduli) & set(other.moduli)
        if overlap:
            raise ParameterError(f"bases share moduli {sorted(overlap)}")
        return RnsBasis(self.moduli + other.moduli)

    def drop_last(self, count: int = 1) -> "RnsBasis":
        if count >= len(self):
            raise NoiseBudgetExhaustedError(
                "cannot drop every modulus", level=len(self), dropping=count)
        return RnsBasis(self.moduli[: len(self) - count])

    # ------------------------------------------------------------------
    # Residue <-> integer conversions (exact, big-int; used at the edges).
    # ------------------------------------------------------------------

    def to_residues(self, values) -> np.ndarray:
        """Integers (any size, possibly negative) -> residue matrix (L, N)."""
        vals = np.asarray(values, dtype=object)
        out = np.empty((len(self), vals.shape[0]), dtype=np.uint64)
        for i, qi in enumerate(self.moduli):
            out[i] = (vals % qi).astype(np.uint64)
        return out

    def to_integers(self, residues: np.ndarray, centered: bool = True) -> np.ndarray:
        """Residue matrix (L, N) -> object array of integers via CRT.

        With ``centered`` the result is lifted to (-Q/2, Q/2], which is how
        decryption recovers signed plaintext coefficients.
        """
        q = self.modulus
        acc = np.zeros(residues.shape[1], dtype=object)
        for i in range(len(self)):
            weight = self._q_hats[i] * self._q_hat_invs[i] % q
            acc = (acc + residues[i].astype(object) * weight) % q
        if centered:
            half = q // 2
            acc = np.where(acc > half, acc - q, acc)
        return acc

    # ------------------------------------------------------------------
    # Fast base conversion: the changeRNSBase kernel (Listing 1).
    # ------------------------------------------------------------------

    def conversion_constants(self, dest: "RnsBasis") -> np.ndarray:
        """The constant matrix C[src][dest] = (Q/q_src) mod p_dest.

        These are exactly the ``constant[srcModIdx][destModIdx]`` values that
        Listing 1's changeRNSBase multiplies by, and the values held in the
        CRB unit's constant registers.
        """
        c = np.empty((len(self), len(dest)), dtype=np.uint64)
        for i, q_hat in enumerate(self._q_hats):
            for j, pj in enumerate(dest.moduli):
                c[i, j] = q_hat % pj
        return c

    def convert_approx(
        self, residues: np.ndarray, dest: "RnsBasis", correct: bool = True
    ) -> np.ndarray:
        """Fast base conversion of (L, N) residues into basis ``dest``.

        Structure mirrors Listing 1: scale each source residue by
        (Q/q_i)^{-1} mod q_i, then multiply-accumulate rows against the
        constant matrix.  The accumulation over source moduli is what the
        CRB unit buffers on chip.

        With ``correct`` (the HPS floating-point trick used by production
        RNS implementations), the integer overflow count
        v = round(sum_i scaled_i / q_i) is estimated in double precision
        and v*Q subtracted, so the result is x + a*Q with |a| <= 1 instead
        of 0 <= a < L - an order-of-magnitude keyswitch-noise reduction.
        """
        if residues.shape[0] != len(self):
            raise ParameterError(
                "residue count does not match basis size",
                rows=residues.shape[0], basis=len(self),
            )
        scaled = np.empty_like(residues)
        fraction = np.zeros(residues.shape[1], dtype=np.float64)
        for i, qi in enumerate(self.moduli):
            scaled[i] = residues[i] * np.uint64(self._q_hat_invs[i]) % np.uint64(qi)
            if correct:
                fraction += scaled[i].astype(np.float64) / qi
        consts = self.conversion_constants(dest)
        out = np.zeros((len(dest), residues.shape[1]), dtype=np.uint64)
        overflow = np.rint(fraction).astype(np.uint64) if correct else None
        for j, pj in enumerate(dest.moduli):
            pj64 = np.uint64(pj)
            acc = out[j]
            for i in range(len(self)):
                acc += scaled[i] % pj64 * (consts[i, j] % pj64) % pj64
                acc %= pj64
            if correct:
                q_mod = np.uint64(self.modulus % pj)
                acc += (pj64 - overflow % pj64 * q_mod % pj64) % pj64
                acc %= pj64
        return out

    def convert_exact(self, residues: np.ndarray, dest: "RnsBasis") -> np.ndarray:
        """Exact (centered) base conversion through big-int CRT; test oracle."""
        values = self.to_integers(residues, centered=True)
        return dest.to_residues(values)
