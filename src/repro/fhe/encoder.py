"""CKKS encoder: complex vectors <-> integer polynomials.

CKKS packs n = N/2 complex numbers into one degree-(N-1) real polynomial via
the canonical embedding: slot j holds the evaluation of the polynomial at
zeta^(5^j), where zeta is a primitive 2N-th root of unity.  The 5^j ordering
is what turns the ring automorphism x -> x^(5^r) into a cyclic rotation of
slots by r, and x -> x^(-1) into complex conjugation of every slot.

Both directions are computed with a single length-2N FFT (evaluating a real
polynomial at all odd powers of zeta), then indexed by the rotation group.
"""

from __future__ import annotations

import numpy as np

from repro.fhe.poly import RnsPoly
from repro.fhe.rns import RnsBasis
from repro.reliability.errors import ParameterError


class CkksEncoder:
    """Encode/decode between C^(N/2) and scaled integer coefficient vectors."""

    def __init__(self, degree: int):
        if degree & (degree - 1) or degree < 4:
            raise ParameterError("degree must be a power of two >= 4",
                                 degree=degree)
        self.degree = degree
        self.slots = degree // 2
        # rot_group[j] = 5^j mod 2N: the slot-j evaluation exponent.
        group = np.empty(self.slots, dtype=np.int64)
        acc = 1
        for j in range(self.slots):
            group[j] = acc
            acc = acc * 5 % (2 * degree)
        self.rot_group = group

    # -- real-coefficient core transforms ---------------------------------

    def embed(self, coeffs: np.ndarray) -> np.ndarray:
        """Evaluate a real coefficient vector at zeta^(5^j) for all slots."""
        n2 = 2 * self.degree
        padded = np.zeros(n2, dtype=np.complex128)
        padded[: self.degree] = coeffs
        # ifft(x)[k] * 2N = sum_i x_i * exp(+2*pi*1j*i*k / 2N) = m(zeta^k)
        evals = np.fft.ifft(padded) * n2
        return evals[self.rot_group]

    def unembed(self, slot_values: np.ndarray) -> np.ndarray:
        """Real coefficient vector whose embedding equals ``slot_values``.

        Fills the conjugate-symmetric spectrum (values at zeta^(-5^j) are
        conjugated) and inverts with one FFT; the result is exactly real up
        to floating-point error.
        """
        n2 = 2 * self.degree
        spectrum = np.zeros(n2, dtype=np.complex128)
        spectrum[self.rot_group] = slot_values
        spectrum[n2 - self.rot_group] = np.conj(slot_values)
        # a_i = (1/N) sum_{k odd} W_k zeta^{-ki}  = fft(W)[i] / N
        coeffs = np.fft.fft(spectrum)[: self.degree] / self.degree
        return coeffs.real

    # -- public encode/decode ---------------------------------------------

    def encode(self, values, scale: float) -> np.ndarray:
        """Complex slot values -> rounded big-int coefficient array (object).

        ``values`` shorter than N/2 slots is repeated to fill the ciphertext
        (the standard replication trick for partially packed data).
        """
        values = np.asarray(values, dtype=np.complex128).ravel()
        if len(values) > self.slots:
            raise ParameterError(f"at most {self.slots} slots available",
                                 got=len(values))
        if self.slots % len(values):
            raise ParameterError(
                "slot count must be a multiple of the value count",
                slots=self.slots, got=len(values),
            )
        full = np.tile(values, self.slots // len(values))
        coeffs = self.unembed(full) * scale
        limit = float(np.max(np.abs(coeffs))) if coeffs.size else 0.0
        if limit >= 2**62:
            # Beyond float64's exact-integer range the rounding below would
            # corrupt coefficients silently; no parameter set in this repo
            # gets close (28-bit scales), so treat it as a usage error.
            raise OverflowError("encoded coefficients exceed 2^62; lower the scale")
        # np.rint matches Python round()'s half-to-even, so this vectorized
        # rounding is bit-identical to the per-element int(round(c)) loop it
        # replaces; int64 is exact here because |coeffs| < 2^62.
        return np.rint(coeffs).astype(np.int64)

    def decode(self, coeffs, scale: float) -> np.ndarray:
        """Centered big-int coefficients -> complex slot values."""
        # astype is a C-level cast even from object (big-int CRT) arrays,
        # replacing the old per-element float() list comprehension.
        as_float = np.asarray(coeffs).astype(np.float64)
        return self.embed(as_float) / scale

    def encode_poly(self, basis: RnsBasis, values, scale: float,
                    domain: str = "eval") -> RnsPoly:
        """Encode directly into an RnsPoly over ``basis``."""
        return RnsPoly.from_integers(basis, self.encode(values, scale), domain)
