"""Keyswitching: standard (BV) and boosted (hybrid, t-digit) algorithms.

Keyswitching re-encrypts a polynomial from one secret key to another without
decrypting; homomorphic multiplication needs it (s^2 -> s) and so does every
rotation (phi(s) -> s).  It dominates FHE runtime ("over 90% of all
operations", Sec. 2.2), which is why the paper designs CraterLake around it.

Two algorithms are implemented:

* **Standard keyswitching** (`standard_keyswitch`): the per-RNS-prime (BV)
  decomposition F1 targets.  The hint holds 2*L^2 residue polynomials
  (1.7 GB at N=64K, L=60) and applying it costs L^2 NTTs.
* **Boosted keyswitching** (`boosted_keyswitch`): the Gentry-Halevi-Smart
  family (Listing 1), parameterized by the number of digits t.  The input
  is expanded to a wider basis Q*P, the hint shrinks to (t+1) ciphertexts,
  and NTT count drops to O(L).  t=1 is the paper's Listing 1; higher t
  trades hint size for a smaller modulus expansion (Sec. 3.1).

Both produce a pair (ks0, ks1) over the input's basis such that
``ks0 + ks1*s_new ~= c * s_old`` up to keyswitching noise.

Hints follow the KSHGen convention: the uniform half is regenerated from a
seed (see `repro.fhe.sampling.seeded_uniform_poly`) rather than stored,
halving hint footprint exactly as the hardware unit does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fhe.ntt import BatchedNttContext
from repro.fhe.poly import EVAL, RnsPoly
from repro.fhe.rns import RnsBasis
from repro.fhe.sampling import error_poly, seeded_uniform_poly
from repro.obs import collector as obs
from repro.reliability import faults as _faults
from repro.reliability import guards as _guards
from repro.reliability.checksums import limb_checksums, verify_limbs
from repro.reliability.errors import ParameterError


def digit_bases(basis: RnsBasis, alpha: int) -> list[RnsBasis]:
    """Split a basis into contiguous digits of at most ``alpha`` primes."""
    if alpha <= 0:
        raise ParameterError("digit size must be positive", alpha=alpha)
    moduli = basis.moduli
    return [
        RnsBasis(moduli[i : i + alpha]) for i in range(0, len(moduli), alpha)
    ]


@dataclass
class KeySwitchHint:
    """A keyswitch hint (KSH): seeded gadget encryption of ``s_old`` under ``s_new``.

    ``b_polys[i]`` is the stored half for digit i, over the full basis
    Q_max*P in the EVAL domain; the uniform half ``a_i`` is regenerated from
    ``seed`` on demand (the KSHGen optimization).  ``alpha`` is the digit
    width in primes; ``aux_count`` = len(P).
    """

    b_polys: list[RnsPoly]
    seed: int
    alpha: int
    full_basis: RnsBasis  # Q_max extended by P
    aux_count: int  # number of special primes (0 => standard keyswitching)
    label: str = "ksh"
    # Per-digit (b_sums, a_sums) limb checksums over the full basis, present
    # when the hint was generated with integrity=True; verified on every
    # restricted_rows() load while the reliability integrity switch is on.
    checksums: list | None = None
    _a_cache: dict = field(default_factory=dict, repr=False)

    @property
    def digits(self) -> int:
        return len(self.b_polys)

    def a_poly(self, index: int) -> RnsPoly:
        """The pseudorandom half of digit ``index``, expanded from the seed.

        Doubly cached: per hint instance here, and across hint instances in
        :func:`repro.fhe.sampling.seeded_uniform_poly`'s keyed stream cache
        (the ARK-style reuse - a regenerated or deserialized hint with the
        same seed never re-expands its PRNG streams).
        """
        poly = self._a_cache.get(index)
        if poly is None:
            poly = seeded_uniform_poly(
                self.full_basis, self.b_polys[0].degree, self.seed, index
            )
            self._a_cache[index] = poly
        return poly

    def size_words(self, level: int | None = None) -> int:
        """Residue words a server must *store* for this hint.

        With seeded generation only the b half is stored; without it the a
        half doubles this (see `repro.analysis.opcounts` for the analytic
        version used in the paper's Fig. 4 / Sec. 3 discussion).
        """
        rows = sum(p.level for p in self.b_polys)
        return rows * self.b_polys[0].degree

    def restricted_rows(self, index: int, basis: RnsBasis) -> tuple[np.ndarray, np.ndarray]:
        """(b, a) residue rows of digit ``index`` restricted to ``basis``.

        This is the hint's HBM trust boundary: the fancy-index copy below
        models the streaming load, so an installed fault injector corrupts
        the *transferred* rows (never the stored hint), and the integrity
        switch verifies the transfer against the generation-time checksums.
        """
        full = self.full_basis.moduli
        take = [full.index(q) for q in basis.moduli]
        b_rows = self.b_polys[index].data[take]
        a_rows = self.a_poly(index).data[take]
        injector = _faults.active_injector()
        if injector is not None:
            injector.maybe_corrupt(_faults.HBM, b_rows)
        integ = _guards.integrity_active()
        if (integ is not None and integ.verify_hints
                and self.checksums is not None):
            b_sums, a_sums = self.checksums[index]
            with obs.span("reliability.hint.verify", "reliability"):
                verify_limbs(b_rows, basis.moduli, b_sums[take],
                             f"hint {self.label} digit {index} (b)")
                verify_limbs(a_rows, basis.moduli, a_sums[take],
                             f"hint {self.label} digit {index} (a)")
        return b_rows, a_rows


def generate_hint(
    s_old: RnsPoly,
    s_new: RnsPoly,
    q_basis: RnsBasis,
    aux_basis: RnsBasis | None,
    alpha: int,
    rng: np.random.Generator,
    seed: int,
    sigma: float = 3.2,
    label: str = "ksh",
    error_scale: int = 1,
    integrity: bool = False,
) -> KeySwitchHint:
    """Generate a keyswitch hint for ``s_old -> s_new``.

    ``s_old``/``s_new`` must be EVAL-domain polynomials over Q_max*P (the
    concatenation of ``q_basis`` and ``aux_basis``).  For boosted
    keyswitching pass the special basis P; for standard keyswitching pass
    ``aux_basis=None`` and ``alpha=1``.

    Digit i stores  b_i = -a_i*s_new + e_i + P * (Q/Q_i) * [(Q/Q_i)^-1]_{Q_i} * s_old
    over Q_max*P (P = 1 for standard keyswitching).
    """
    full = q_basis if aux_basis is None else q_basis.extend(aux_basis)
    if s_old.basis != full or s_new.basis != full:
        raise ParameterError(
            "keys must be expressed over the full basis Q*P",
            s_old_level=s_old.level, s_new_level=s_new.level,
            full_level=len(full),
        )
    obs.count("fhe.keyswitch.hints_generated")
    degree = s_old.degree
    p_product = aux_basis.modulus if aux_basis is not None else 1
    q_total = q_basis.modulus
    digits = digit_bases(q_basis, alpha)
    b_polys = []
    for i, digit in enumerate(digits):
        q_i = digit.modulus
        q_hat = q_total // q_i
        factor = p_product * q_hat * pow(q_hat % q_i, -1, q_i)
        a_i = seeded_uniform_poly(full, degree, seed, i)
        # BGV-style schemes scale the hint error by the plaintext modulus
        # so keyswitching noise stays a multiple of t (error_scale = t).
        e_i = error_poly(full, degree, rng, sigma).scalar_mul(error_scale)
        b_i = e_i - a_i * s_new + s_old.scalar_mul(factor)
        b_polys.append(b_i)
    hint = KeySwitchHint(
        b_polys=b_polys,
        seed=seed,
        alpha=alpha,
        full_basis=full,
        aux_count=0 if aux_basis is None else len(aux_basis),
        label=label,
    )
    if integrity:
        with obs.span("reliability.checksum.seal", "reliability"):
            hint.checksums = [
                (limb_checksums(b.data, full.moduli),
                 limb_checksums(hint.a_poly(i).data, full.moduli))
                for i, b in enumerate(b_polys)
            ]
    return hint


def _accumulate_digits(
    poly: RnsPoly, hint: KeySwitchHint, target: RnsBasis
) -> tuple[RnsPoly, RnsPoly]:
    """Core of both algorithms: sum_i ModUp([c]_{D_i}) * ksh_i over ``target``.

    ``poly`` must be coefficient-domain over the current basis Q_level.
    Each digit's residues are raised to ``target`` with the fast base
    conversion (the CRB kernel) and NTT'd, then multiplied against the
    hint's (b, a) rows and accumulated - Listing 1 lines 5-6 generalized to
    t digits.
    """
    degree = poly.degree
    acc0 = RnsPoly.zero(target, degree, EVAL)
    acc1 = RnsPoly.zero(target, degree, EVAL)
    level_digits = digit_bases(poly.basis, hint.alpha)
    offset = 0
    for i, digit in enumerate(level_digits):
        rows = poly.data[offset : offset + len(digit)]
        offset += len(digit)
        raised = RnsPoly(digit, rows, "coeff").change_basis(target).to_eval()
        b_rows, a_rows = hint.restricted_rows(i, target)
        acc0 = acc0 + raised * RnsPoly(target, b_rows, EVAL)
        acc1 = acc1 + raised * RnsPoly(target, a_rows, EVAL)
    return acc0, acc1


def mod_down(poly: RnsPoly, q_basis: RnsBasis, aux_basis: RnsBasis) -> RnsPoly:
    """Divide by P: (poly - ModUp([poly]_P)) * P^-1 over ``q_basis``.

    This is Listing 1 lines 7-10: the rounding step that removes the
    P-expansion after hint application, keeping keyswitch noise small.
    The per-limb P^{-1} column is cached on the basis, so the division is
    one limb-batched expression.
    """
    n_q = len(q_basis)
    coeff = poly.to_coeff()
    q_part = RnsPoly(q_basis, coeff.data[:n_q], "coeff")
    p_part = RnsPoly(aux_basis, coeff.data[n_q:], "coeff")
    correction = p_part.change_basis(q_basis)
    diff = q_part - correction
    inv_col = q_basis.scalar_inverse_col(aux_basis.modulus)
    out = diff.data * inv_col % q_basis.moduli_col
    return RnsPoly(q_basis, out, "coeff").to_eval()


def mod_down_pair(
    p0: RnsPoly, p1: RnsPoly, q_basis: RnsBasis, aux_basis: RnsBasis
) -> tuple[RnsPoly, RnsPoly]:
    """ModDown of both keyswitch accumulators with shared, lazy transforms.

    Same math as :func:`mod_down` (which tests keep as the reference
    oracle), with two transform savings that are bit-exact by NTT
    linearity and row independence:

    * the pair is stacked, so each transform is one batched call over a
      (2, ..., N) tensor instead of two;
    * only the P special-basis rows are inverse-transformed (the base
      conversion needs their coefficients) and only the Q-basis
      correction is forward-transformed - the Q rows of the accumulators
      never leave the EVAL domain, because subtraction and the P^{-1}
      multiply commute with the NTT modulo each q_i.

    The base conversion handles both coefficient blocks in one call
    (``convert_approx`` is column-independent, so concatenating the two
    polynomials along the coefficient axis is exact).
    """
    n_q = len(q_basis)
    degree = p0.degree
    if p0.domain != EVAL or p1.domain != EVAL:
        return (mod_down(p0, q_basis, aux_basis),
                mod_down(p1, q_basis, aux_basis))
    aux_coeff = BatchedNttContext.get(aux_basis.moduli, degree).inverse(
        np.stack([p0.data[n_q:], p1.data[n_q:]])
    )
    p_rows = np.concatenate([aux_coeff[0], aux_coeff[1]], axis=1)
    corr = aux_basis.convert_approx(p_rows, q_basis)
    corr = BatchedNttContext.get(q_basis.moduli, degree).forward(
        np.stack([corr[:, :degree], corr[:, degree:]])
    )
    q_col = q_basis.moduli_col
    inv_col = q_basis.scalar_inverse_col(aux_basis.modulus)
    q_rows = np.stack([p0.data[:n_q], p1.data[:n_q]])
    out = (q_rows + q_col - corr) % q_col * inv_col % q_col
    return RnsPoly(q_basis, out[0], EVAL), RnsPoly(q_basis, out[1], EVAL)


def boosted_keyswitch(
    poly: RnsPoly, hint: KeySwitchHint, aux_basis: RnsBasis
) -> tuple[RnsPoly, RnsPoly]:
    """Boosted (t-digit) keyswitching of an EVAL-domain polynomial.

    Follows Listing 1: INTT -> per-digit ModUp (changeRNSBase) -> NTT ->
    hint multiply-accumulate -> ModDown back to the input basis.
    Returns (ks0, ks1) with ks0 + ks1*s_new ~= poly * s_old.
    """
    if hint.aux_count != len(aux_basis):
        raise ParameterError(
            "hint was generated for a different special basis",
            hint_aux=hint.aux_count, aux=len(aux_basis),
        )
    with obs.span("keyswitch.boosted", "fhe"):
        obs.count("fhe.keyswitch.boosted")
        q_level = poly.basis
        target = q_level.extend(aux_basis)
        coeff = poly.to_coeff()
        acc0, acc1 = _accumulate_digits(coeff, hint, target)
        ks0, ks1 = mod_down_pair(acc0, acc1, q_level, aux_basis)
        # The keyswitch working set displaces register-file residents: let
        # an installed integrity boundary hook sweep the evictees' seals.
        _guards.keyswitch_boundary()
        return ks0, ks1


def standard_keyswitch(
    poly: RnsPoly, hint: KeySwitchHint
) -> tuple[RnsPoly, RnsPoly]:
    """Standard (BV, per-prime digit) keyswitching, as F1 performs it.

    No special basis and no ModDown; every RNS prime is its own digit, so
    applying the hint costs L^2 NTTs (each digit is base-converted to all L
    primes) - the scaling wall that motivates the boosted algorithm.
    """
    if hint.aux_count != 0:
        raise ParameterError(
            "hint was generated with a special basis; use boosted",
            hint_aux=hint.aux_count,
        )
    with obs.span("keyswitch.standard", "fhe"):
        obs.count("fhe.keyswitch.standard")
        q_level = poly.basis
        coeff = poly.to_coeff()
        acc0, acc1 = _accumulate_digits(coeff, hint, q_level)
        _guards.keyswitch_boundary()
        return acc0, acc1
