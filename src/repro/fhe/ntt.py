"""Negacyclic number-theoretic transform (NTT).

The NTT is the workhorse of RNS-CKKS: in the NTT (evaluation) domain,
multiplication in Z_q[x]/(x^N + 1) is element-wise.  CraterLake devotes two
of its largest functional units to it; here we implement the same transform
in vectorized numpy as part of the functional substrate.

We use the standard merged-twiddle formulation (Longa & Naehrig):
the powers of the 2N-th root psi are folded into the butterflies, so the
forward transform maps coefficients directly to evaluations of the
*negacyclic* ring without a separate pre-multiplication pass.  Forward uses
Cooley-Tukey butterflies (natural -> bit-reversed order); inverse uses
Gentleman-Sande (bit-reversed -> natural).

All arithmetic stays in uint64: moduli are at most 30 bits in this library,
so butterfly products are < 2^60 and never overflow.
"""

from __future__ import annotations

import numpy as np

from repro.fhe.primes import root_of_unity
from repro.obs import collector as obs
from repro.reliability import faults as _faults
from repro.reliability import guards as _guards
from repro.reliability.errors import FaultDetectedError, ParameterError


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation reversing log2(n)-bit indices."""
    if n & (n - 1):
        raise ParameterError("n must be a power of two", n=n)
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        rev |= ((idx >> b) & 1) << (bits - 1 - b)
    return rev


class NttContext:
    """Precomputed tables for the negacyclic NTT modulo one prime.

    Instances are cached per (modulus, degree) pair via :meth:`get`; every
    RnsPoly transform reuses them, mirroring how the hardware NTT unit's
    twiddle ROMs are shared by all residue polynomials of one modulus.
    """

    _cache: dict[tuple[int, int], "NttContext"] = {}

    def __init__(self, modulus: int, degree: int):
        if degree & (degree - 1):
            raise ParameterError("degree must be a power of two",
                                 degree=degree)
        if modulus >= 1 << 31:
            raise ParameterError(
                "modulus must fit in 31 bits to avoid overflow",
                modulus_bits=modulus.bit_length(),
            )
        self.modulus = modulus
        self.degree = degree
        psi = root_of_unity(modulus, 2 * degree)
        psi_inv = pow(psi, modulus - 2, modulus)
        rev = bit_reverse_permutation(degree)
        powers = np.empty(degree, dtype=np.uint64)
        powers_inv = np.empty(degree, dtype=np.uint64)
        acc = 1
        acc_inv = 1
        for i in range(degree):
            powers[i] = acc
            powers_inv[i] = acc_inv
            acc = acc * psi % modulus
            acc_inv = acc_inv * psi_inv % modulus
        # Twiddles indexed in bit-reversed order, as consumed stage by stage.
        self.psi_bitrev = powers[rev]
        self.psi_inv_bitrev = powers_inv[rev]
        self.n_inv = pow(degree, modulus - 2, modulus)
        self._rev = rev
        self._psi = psi
        self._inv_check_vec: np.ndarray | None = None

    @classmethod
    def get(cls, modulus: int, degree: int) -> "NttContext":
        key = (modulus, degree)
        ctx = cls._cache.get(key)
        if ctx is None:
            ctx = cls(modulus, degree)
            cls._cache[key] = ctx
        return ctx

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic NTT: coefficient order in, bit-reversed evaluations out.

        Accepts shape (..., N); transforms the last axis.
        """
        if obs.is_enabled():
            with obs.span("ntt.forward", "fhe"):
                obs.count("fhe.ntt.forward")
                out = self._forward(coeffs)
        else:
            out = self._forward(coeffs)
        return self._post_transform(coeffs, out, self._forward, False)

    def _post_transform(self, data, out, kernel, inverse: bool):
        """Reliability tail of a transform: fault hook, then checks.

        An installed fault injector corrupts the *output* (a butterfly
        compute fault - the input stays clean, so both checks below have a
        clean reference).  When the integrity switch is on, the end-of-op
        transform checksum (:meth:`verify_transform`, O(N), deterministic
        for single-word corruption) runs after every transform, and every
        k-th transform is additionally re-executed and compared.  With
        neither installed this costs two None tests.
        """
        injector = _faults.active_injector()
        if injector is not None:
            injector.maybe_corrupt(_faults.NTT, out)
        integ = _guards.integrity_active()
        if integ is not None:
            if integ.ntt_checksum:
                self.verify_transform(data, out, inverse)
            if integ.ntt_recheck_every:
                integ.ntt_calls += 1
                if integ.ntt_calls % integ.ntt_recheck_every == 0:
                    with obs.span("reliability.ntt.recheck", "reliability"):
                        obs.count("reliability.ntt.recheck")
                        if not np.array_equal(out, kernel(data)):
                            raise FaultDetectedError(
                                "NTT re-execution disagrees with first run; "
                                "compute fault in a butterfly",
                                modulus=self.modulus, degree=self.degree,
                            )
        return out

    # -- end-of-op transform checksums ------------------------------------
    #
    # The transform is linear, so one fixed linear functional of the output
    # can be predicted from the input in O(N).  Evaluating the residue
    # polynomial at x=1 gives both directions:
    #
    # * forward:  out[j] enumerates x(w_j) over the primitive 2N-th roots
    #   w_j = psi^(2*br(j)+1); summing the geometric series in k shows
    #   sum_j out[j] == N * in[0]  (mod q).
    # * inverse:  out(1) = sum_k out[k] expressed through the interpolation
    #   formula is (1/N) * sum_j c_j * in[j] with c_j = 2*w_j/(w_j - 1)
    #   (using w_j^N = -1), a per-context constant vector.
    #
    # A corrupted output word shifts the checked sum by a nonzero delta
    # mod q (bit flips below the modulus width cannot be multiples of q),
    # so single-word compute faults are caught with certainty at the cost
    # of one vector sum (forward) or one multiply-accumulate row (inverse).

    def _inverse_check_vector(self) -> np.ndarray:
        c = self._inv_check_vec
        if c is None:
            q = self.modulus
            c = np.empty(self.degree, dtype=np.uint64)
            for j in range(self.degree):
                w = pow(self._psi, 2 * int(self._rev[j]) + 1, q)
                c[j] = 2 * w * pow((w - 1) % q, q - 2, q) % q
            self._inv_check_vec = c
        return c

    def verify_transform(self, data, out, inverse: bool) -> None:
        """Raise :class:`FaultDetectedError` on a transform-checksum
        mismatch between input ``data`` and output ``out`` (last axis)."""
        with obs.span("reliability.ntt.checksum", "reliability"):
            obs.count("reliability.ntt.checksum")
            q = np.uint64(self.modulus)
            n_mod = np.uint64(self.degree % self.modulus)
            data = np.asarray(data, dtype=np.uint64)
            if inverse:
                expect = (self._inverse_check_vector() * data % q).sum(
                    axis=-1, dtype=np.uint64) % q
                got = n_mod * (out.sum(axis=-1, dtype=np.uint64) % q) % q
            else:
                expect = n_mod * data[..., 0] % q
                got = out.sum(axis=-1, dtype=np.uint64) % q
            if not np.array_equal(got, expect):
                raise FaultDetectedError(
                    "transform checksum mismatch; compute fault in an "
                    f"{'iNTT' if inverse else 'NTT'} butterfly",
                    modulus=self.modulus, degree=self.degree,
                )

    def _forward(self, coeffs: np.ndarray) -> np.ndarray:
        q = np.uint64(self.modulus)
        n = self.degree
        a = np.array(coeffs, dtype=np.uint64, copy=True)
        lead = a.shape[:-1]
        a = a.reshape(-1, n)
        t = n
        m = 1
        while m < n:
            t //= 2
            s = self.psi_bitrev[m : 2 * m]  # one twiddle per butterfly group
            blocks = a.reshape(-1, m, 2 * t)
            u = blocks[:, :, :t]
            v = blocks[:, :, t:] * s[None, :, None] % q
            blocks[:, :, t:] = (u + q - v) % q
            blocks[:, :, :t] = (u + v) % q
            m *= 2
        return a.reshape(*lead, n)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT: bit-reversed evaluations in, coeffs out."""
        if obs.is_enabled():
            with obs.span("ntt.inverse", "fhe"):
                obs.count("fhe.ntt.inverse")
                out = self._inverse(values)
        else:
            out = self._inverse(values)
        return self._post_transform(values, out, self._inverse, True)

    def _inverse(self, values: np.ndarray) -> np.ndarray:
        q = np.uint64(self.modulus)
        n = self.degree
        a = np.array(values, dtype=np.uint64, copy=True)
        lead = a.shape[:-1]
        a = a.reshape(-1, n)
        t = 1
        m = n
        while m > 1:
            h = m // 2
            s = self.psi_inv_bitrev[h : 2 * h]
            blocks = a.reshape(-1, h, 2 * t)
            u = blocks[:, :, :t].copy()
            v = blocks[:, :, t:]
            blocks[:, :, :t] = (u + v) % q
            blocks[:, :, t:] = (u + q - v) % q * s[None, :, None] % q
            t *= 2
            m = h
        a = a * np.uint64(self.n_inv) % q
        return a.reshape(*lead, n)

    def negacyclic_convolution(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Reference product in Z_q[x]/(x^N+1) computed through the NTT."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(fa * fb % np.uint64(self.modulus))


def naive_negacyclic_convolution(a, b, modulus: int) -> np.ndarray:
    """O(N^2) schoolbook product in Z_q[x]/(x^N+1); test oracle for the NTT."""
    a = np.asarray(a, dtype=object)
    b = np.asarray(b, dtype=object)
    n = a.shape[0]
    out = [0] * n
    for i in range(n):
        ai = int(a[i])
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            prod = ai * int(b[j])
            if k < n:
                out[k] = (out[k] + prod) % modulus
            else:
                out[k - n] = (out[k - n] - prod) % modulus
    return np.array(out, dtype=np.uint64)
