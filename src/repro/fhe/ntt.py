"""Negacyclic number-theoretic transform (NTT).

The NTT is the workhorse of RNS-CKKS: in the NTT (evaluation) domain,
multiplication in Z_q[x]/(x^N + 1) is element-wise.  CraterLake devotes two
of its largest functional units to it; here we implement the same transform
in vectorized numpy as part of the functional substrate.

We use the standard merged-twiddle formulation (Longa & Naehrig):
the powers of the 2N-th root psi are folded into the butterflies, so the
forward transform maps coefficients directly to evaluations of the
*negacyclic* ring without a separate pre-multiplication pass.  Forward uses
Cooley-Tukey butterflies (natural -> bit-reversed order); inverse uses
Gentleman-Sande (bit-reversed -> natural).

All arithmetic stays in uint64: moduli are at most 30 bits in this library,
so butterfly products are < 2^60 and never overflow.
"""

from __future__ import annotations

import numpy as np

from repro.fhe.primes import root_of_unity
from repro.obs import collector as obs
from repro.reliability import faults as _faults
from repro.reliability import guards as _guards
from repro.reliability.errors import FaultDetectedError, ParameterError


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation reversing log2(n)-bit indices."""
    if n & (n - 1):
        raise ParameterError("n must be a power of two", n=n)
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        rev |= ((idx >> b) & 1) << (bits - 1 - b)
    return rev


_AUTO_PERM_CACHE: dict[tuple[int, int], np.ndarray] = {}


def eval_automorphism_permutation(degree: int, k: int) -> np.ndarray:
    """Index permutation realizing x -> x^k directly on EVAL-domain data.

    The forward negacyclic NTT stores the evaluation at w_j =
    psi^(2*br(j)+1) in slot j (bit-reversed order).  The automorphism
    sends the evaluation at w to the evaluation at w^k, so
    ``out[j] = in[perm[j]]`` with ``2*br(perm[j])+1 = k*(2*br(j)+1) mod
    2N`` (well defined because k is odd).  Pure data movement - no
    transforms, no modular arithmetic - and modulus-independent, so one
    table serves every limb of a residue matrix, exactly how the hardware
    automorphism unit permutes NTT-domain residues without leaving the
    evaluation domain.  Cached per (degree, k mod 2N).
    """
    if k % 2 == 0:
        raise ParameterError("automorphism exponent must be odd", k=k)
    key = (degree, k % (2 * degree))
    perm = _AUTO_PERM_CACHE.get(key)
    if perm is None:
        rev = bit_reverse_permutation(degree)
        exps = key[1] * (2 * rev + 1) % (2 * degree)
        perm = np.argsort(rev)[(exps - 1) // 2]
        perm.setflags(write=False)
        _AUTO_PERM_CACHE[key] = perm
    return perm


def power_table(base: int, count: int, modulus: int) -> np.ndarray:
    """``[base^0, base^1, ..., base^(count-1)] mod modulus`` as uint64.

    Square-and-multiply over the exponent's bit decomposition: log2(count)
    vectorized multiplies instead of a length-``count`` Python loop.  Safe
    in uint64 because factors stay below the 31-bit modulus.
    """
    q = np.uint64(modulus)
    out = np.ones(count, dtype=np.uint64)
    idx = np.arange(count, dtype=np.uint64)
    sq = base % modulus
    for b in range(max(1, count - 1).bit_length()):
        hit = (idx >> np.uint64(b)) & np.uint64(1) == 1
        out[hit] = out[hit] * np.uint64(sq) % q
        sq = sq * sq % modulus
    return out


def mod_pow_vec(base: np.ndarray, exponent: int, modulus: int) -> np.ndarray:
    """Elementwise ``base^exponent mod modulus`` for a fixed scalar exponent.

    Vectorized square-and-multiply (one vector multiply per exponent bit);
    replaces per-element Python ``pow()`` loops.
    """
    q = np.uint64(modulus)
    out = np.ones_like(base, dtype=np.uint64)
    sq = np.asarray(base, dtype=np.uint64) % q
    e = int(exponent)
    while e:
        if e & 1:
            out = out * sq % q
        sq = sq * sq % q
        e >>= 1
    return out


class NttContext:
    """Precomputed tables for the negacyclic NTT modulo one prime.

    Instances are cached per (modulus, degree) pair via :meth:`get`; every
    RnsPoly transform reuses them, mirroring how the hardware NTT unit's
    twiddle ROMs are shared by all residue polynomials of one modulus.
    """

    _cache: dict[tuple[int, int], "NttContext"] = {}

    def __init__(self, modulus: int, degree: int):
        if degree & (degree - 1):
            raise ParameterError("degree must be a power of two",
                                 degree=degree)
        if modulus >= 1 << 31:
            raise ParameterError(
                "modulus must fit in 31 bits to avoid overflow",
                modulus_bits=modulus.bit_length(),
            )
        self.modulus = modulus
        self.degree = degree
        psi = root_of_unity(modulus, 2 * degree)
        psi_inv = pow(psi, modulus - 2, modulus)
        rev = bit_reverse_permutation(degree)
        powers = power_table(psi, degree, modulus)
        powers_inv = power_table(psi_inv, degree, modulus)
        # Twiddles indexed in bit-reversed order, as consumed stage by stage.
        self.psi_bitrev = powers[rev]
        self.psi_inv_bitrev = powers_inv[rev]
        self.n_inv = pow(degree, modulus - 2, modulus)
        self._rev = rev
        self._psi = psi
        self._inv_check_vec: np.ndarray | None = None

    @classmethod
    def get(cls, modulus: int, degree: int) -> "NttContext":
        key = (modulus, degree)
        ctx = cls._cache.get(key)
        if ctx is None:
            ctx = cls(modulus, degree)
            cls._cache[key] = ctx
        return ctx

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic NTT: coefficient order in, bit-reversed evaluations out.

        Accepts shape (..., N); transforms the last axis.
        """
        if obs.is_enabled():
            with obs.span("ntt.forward", "fhe"):
                obs.count("fhe.ntt.forward")
                out = self._forward(coeffs)
        else:
            out = self._forward(coeffs)
        return self._post_transform(coeffs, out, self._forward, False)

    def _post_transform(self, data, out, kernel, inverse: bool):
        """Reliability tail of a transform: fault hook, then checks.

        An installed fault injector corrupts the *output* (a butterfly
        compute fault - the input stays clean, so both checks below have a
        clean reference).  When the integrity switch is on, the end-of-op
        transform checksum (:meth:`verify_transform`, O(N), deterministic
        for single-word corruption) runs after every transform, and every
        k-th transform is additionally re-executed and compared.  With
        neither installed this costs two None tests.
        """
        injector = _faults.active_injector()
        if injector is not None:
            injector.maybe_corrupt(_faults.NTT, out)
        integ = _guards.integrity_active()
        if integ is not None:
            if integ.ntt_checksum:
                self.verify_transform(data, out, inverse)
            if integ.ntt_recheck_every:
                integ.ntt_calls += 1
                if integ.ntt_calls % integ.ntt_recheck_every == 0:
                    with obs.span("reliability.ntt.recheck", "reliability"):
                        obs.count("reliability.ntt.recheck")
                        if not np.array_equal(out, kernel(data)):
                            raise FaultDetectedError(
                                "NTT re-execution disagrees with first run; "
                                "compute fault in a butterfly",
                                modulus=self.modulus, degree=self.degree,
                            )
        return out

    # -- end-of-op transform checksums ------------------------------------
    #
    # The transform is linear, so one fixed linear functional of the output
    # can be predicted from the input in O(N).  Evaluating the residue
    # polynomial at x=1 gives both directions:
    #
    # * forward:  out[j] enumerates x(w_j) over the primitive 2N-th roots
    #   w_j = psi^(2*br(j)+1); summing the geometric series in k shows
    #   sum_j out[j] == N * in[0]  (mod q).
    # * inverse:  out(1) = sum_k out[k] expressed through the interpolation
    #   formula is (1/N) * sum_j c_j * in[j] with c_j = 2*w_j/(w_j - 1)
    #   (using w_j^N = -1), a per-context constant vector.
    #
    # A corrupted output word shifts the checked sum by a nonzero delta
    # mod q (bit flips below the modulus width cannot be multiples of q),
    # so single-word compute faults are caught with certainty at the cost
    # of one vector sum (forward) or one multiply-accumulate row (inverse).

    def _inverse_check_vector(self) -> np.ndarray:
        c = self._inv_check_vec
        if c is None:
            q = np.uint64(self.modulus)
            # w_j = psi^(2*rev[j]+1) = psi * (psi^2)^rev[j], all vectorized.
            sq_powers = power_table(
                self._psi * self._psi % self.modulus, self.degree, self.modulus
            )
            w = np.uint64(self._psi) * sq_powers[self._rev] % q
            # (w - 1)^-1 mod q by Fermat: one vector multiply per modulus bit.
            inv = mod_pow_vec((w + q - np.uint64(1)) % q, self.modulus - 2,
                              self.modulus)
            c = np.uint64(2) * w % q * inv % q
            self._inv_check_vec = c
        return c

    def verify_transform(self, data, out, inverse: bool) -> None:
        """Raise :class:`FaultDetectedError` on a transform-checksum
        mismatch between input ``data`` and output ``out`` (last axis)."""
        with obs.span("reliability.ntt.checksum", "reliability"):
            obs.count("reliability.ntt.checksum")
            q = np.uint64(self.modulus)
            n_mod = np.uint64(self.degree % self.modulus)
            data = np.asarray(data, dtype=np.uint64)
            if inverse:
                expect = (self._inverse_check_vector() * data % q).sum(
                    axis=-1, dtype=np.uint64) % q
                got = n_mod * (out.sum(axis=-1, dtype=np.uint64) % q) % q
            else:
                expect = n_mod * data[..., 0] % q
                got = out.sum(axis=-1, dtype=np.uint64) % q
            if not np.array_equal(got, expect):
                raise FaultDetectedError(
                    "transform checksum mismatch; compute fault in an "
                    f"{'iNTT' if inverse else 'NTT'} butterfly",
                    modulus=self.modulus, degree=self.degree,
                )

    def _forward(self, coeffs: np.ndarray) -> np.ndarray:
        q = np.uint64(self.modulus)
        n = self.degree
        a = np.array(coeffs, dtype=np.uint64, copy=True)
        lead = a.shape[:-1]
        a = a.reshape(-1, n)
        t = n
        m = 1
        while m < n:
            t //= 2
            s = self.psi_bitrev[m : 2 * m]  # one twiddle per butterfly group
            blocks = a.reshape(-1, m, 2 * t)
            u = blocks[:, :, :t]
            v = blocks[:, :, t:] * s[None, :, None] % q
            blocks[:, :, t:] = (u + q - v) % q
            blocks[:, :, :t] = (u + v) % q
            m *= 2
        return a.reshape(*lead, n)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT: bit-reversed evaluations in, coeffs out."""
        if obs.is_enabled():
            with obs.span("ntt.inverse", "fhe"):
                obs.count("fhe.ntt.inverse")
                out = self._inverse(values)
        else:
            out = self._inverse(values)
        return self._post_transform(values, out, self._inverse, True)

    def _inverse(self, values: np.ndarray) -> np.ndarray:
        q = np.uint64(self.modulus)
        n = self.degree
        a = np.array(values, dtype=np.uint64, copy=True)
        lead = a.shape[:-1]
        a = a.reshape(-1, n)
        t = 1
        m = n
        while m > 1:
            h = m // 2
            s = self.psi_inv_bitrev[h : 2 * h]
            blocks = a.reshape(-1, h, 2 * t)
            u = blocks[:, :, :t].copy()
            v = blocks[:, :, t:]
            blocks[:, :, :t] = (u + v) % q
            blocks[:, :, t:] = (u + q - v) % q * s[None, :, None] % q
            t *= 2
            m = h
        a = a * np.uint64(self.n_inv) % q
        return a.reshape(*lead, n)

    def negacyclic_convolution(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Reference product in Z_q[x]/(x^N+1) computed through the NTT."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(fa * fb % np.uint64(self.modulus))


class BatchedNttContext:
    """Limb-batched negacyclic NTT over a whole RNS basis.

    All L residue polynomials of an ``RnsPoly`` are transformed in one
    call: the data stays a single ``(L, N)`` uint64 matrix and every
    Cooley-Tukey / Gentleman-Sande layer is one numpy expression with a
    per-row modulus column - the layered-FSM idiom (iterate layers, never
    recurse, no data movement between layers) that warp-core's ping-pong
    NTT engine uses in hardware.  Twiddle tables are the per-limb
    :class:`NttContext` tables stacked into ``(L, N)`` matrices, so the
    batched kernel is bit-exact against the per-limb reference by
    construction (same butterfly order, same reductions, per row).

    Reliability semantics are preserved at the same sites as the per-limb
    path: an installed fault injector corrupts the batched *output* (one
    word of one limb - per-limb faults still exist), and the integrity
    switch verifies the end-of-op transform checksum row by row in one
    vectorized pass (see :meth:`verify_transform`).

    Instances are cached per (moduli tuple, degree) via :meth:`get`.
    """

    _cache: dict[tuple[tuple[int, ...], int], "BatchedNttContext"] = {}

    def __init__(self, moduli: tuple[int, ...], degree: int):
        self.moduli = tuple(int(q) for q in moduli)
        self.degree = degree
        limbs = [NttContext.get(q, degree) for q in self.moduli]
        self._limbs = limbs
        self.q_col = np.array(self.moduli, dtype=np.uint64)[:, None]
        self.psi_bitrev = np.stack([c.psi_bitrev for c in limbs])
        self.psi_inv_bitrev = np.stack([c.psi_inv_bitrev for c in limbs])
        self.n_inv_col = np.array([c.n_inv for c in limbs],
                                  dtype=np.uint64)[:, None]
        self.n_mod_col = np.array([degree % q for q in self.moduli],
                                  dtype=np.uint64)[:, None]
        self._inv_check_mat: np.ndarray | None = None

    @classmethod
    def get(cls, moduli, degree: int) -> "BatchedNttContext":
        key = (tuple(int(q) for q in moduli), degree)
        ctx = cls._cache.get(key)
        if ctx is None:
            ctx = cls(key[0], degree)
            cls._cache[key] = ctx
        return ctx

    @property
    def level(self) -> int:
        return len(self.moduli)

    def forward(self, data: np.ndarray) -> np.ndarray:
        """Batched negacyclic NTT of a (..., L, N) residue tensor.

        Leading axes batch independent polynomials (e.g. both halves of a
        ciphertext) through one set of layer passes; the per-row moduli
        broadcast across them.
        """
        if obs.is_enabled():
            with obs.span("ntt.forward", "fhe"):
                obs.count("fhe.ntt.forward")
                obs.count("fhe.batch.ntt_rows", data.size // self.degree)
                out = self._forward(data)
        else:
            out = self._forward(data)
        return self._post_transform(data, out, self._forward, False)

    def inverse(self, data: np.ndarray) -> np.ndarray:
        """Batched inverse negacyclic NTT of a (..., L, N) evaluation tensor."""
        if obs.is_enabled():
            with obs.span("ntt.inverse", "fhe"):
                obs.count("fhe.ntt.inverse")
                obs.count("fhe.batch.ntt_rows", data.size // self.degree)
                out = self._inverse(data)
        else:
            out = self._inverse(data)
        return self._post_transform(data, out, self._inverse, True)

    def _forward(self, data: np.ndarray) -> np.ndarray:
        # One true modular reduction (the twiddle product) per layer; the
        # butterfly sums stay below 2q, so ``min(w, w - q)`` finishes the
        # reduction with the unsigned-wraparound trick instead of a second
        # and third integer division - same reduced values, bit for bit.
        n = self.degree
        q = self.q_col[:, :, None]  # (L, 1, 1): one modulus per row
        a = np.array(data, dtype=np.uint64, copy=True)
        lead = a.shape[:-1]
        t = n
        m = 1
        while m < n:
            t //= 2
            s = self.psi_bitrev[:, m : 2 * m]  # (L, m) twiddles this layer
            blocks = a.reshape(*lead, m, 2 * t)
            u = blocks[..., :t]
            v = blocks[..., t:] * s[:, :, None] % q
            w_add = u + v
            w_sub = u + (q - v)
            blocks[..., :t] = np.minimum(w_add, w_add - q)
            blocks[..., t:] = np.minimum(w_sub, w_sub - q)
            m *= 2
        return a

    def _inverse(self, data: np.ndarray) -> np.ndarray:
        n = self.degree
        q = self.q_col[:, :, None]
        a = np.array(data, dtype=np.uint64, copy=True)
        lead = a.shape[:-1]
        t = 1
        m = n
        while m > 1:
            h = m // 2
            s = self.psi_inv_bitrev[:, h : 2 * h]
            blocks = a.reshape(*lead, h, 2 * t)
            u = blocks[..., :t].copy()
            v = blocks[..., t:]
            w_add = u + v
            blocks[..., :t] = np.minimum(w_add, w_add - q)
            # (u + q - v) < 2q < 2^32 times a 31-bit twiddle stays under
            # 2^63, so the difference can enter the product unreduced.
            blocks[..., t:] = (u + q - v) * s[:, :, None] % q
            t *= 2
            m = h
        return a * self.n_inv_col % self.q_col

    def _post_transform(self, data, out, kernel, inverse: bool):
        """Reliability tail, batched: same sites as the per-limb path.

        The fault hook sees the whole (L, N) output, so an injected
        corruption lands in one word of one limb - exactly the per-limb
        fault model.  The transform checksum then verifies every limb row
        in one vectorized pass.
        """
        injector = _faults.active_injector()
        if injector is not None:
            injector.maybe_corrupt(_faults.NTT, out)
        integ = _guards.integrity_active()
        if integ is not None:
            if integ.ntt_checksum:
                self.verify_transform(data, out, inverse)
            if integ.ntt_recheck_every:
                integ.ntt_calls += 1
                if integ.ntt_calls % integ.ntt_recheck_every == 0:
                    with obs.span("reliability.ntt.recheck", "reliability"):
                        obs.count("reliability.ntt.recheck")
                        if not np.array_equal(out, kernel(data)):
                            raise FaultDetectedError(
                                "batched NTT re-execution disagrees with "
                                "first run; compute fault in a butterfly",
                                moduli=self.moduli, degree=self.degree,
                            )
        return out

    def _inverse_check_matrix(self) -> np.ndarray:
        c = self._inv_check_mat
        if c is None:
            c = np.stack([ctx._inverse_check_vector() for ctx in self._limbs])
            self._inv_check_mat = c
        return c

    def verify_transform(self, data, out, inverse: bool) -> None:
        """Row-wise transform checksums of a batched (i)NTT in one pass.

        Same linear functionals as :meth:`NttContext.verify_transform`,
        evaluated for all L limbs with per-row moduli; raises
        :class:`FaultDetectedError` naming the mismatching limbs.
        """
        with obs.span("reliability.ntt.checksum", "reliability"):
            obs.count("reliability.ntt.checksum")
            q = self.q_col[:, 0]
            n_mod = self.n_mod_col[:, 0]
            data = np.asarray(data, dtype=np.uint64)
            if inverse:
                expect = (self._inverse_check_matrix() * data % self.q_col
                          ).sum(axis=-1, dtype=np.uint64) % q
                got = n_mod * (out.sum(axis=-1, dtype=np.uint64) % q) % q
            else:
                expect = n_mod * data[..., 0] % q
                got = out.sum(axis=-1, dtype=np.uint64) % q
            if not np.array_equal(got, expect):
                bad = sorted({int(i) for i in np.nonzero(got != expect)[-1]})
                raise FaultDetectedError(
                    "transform checksum mismatch; compute fault in an "
                    f"{'iNTT' if inverse else 'NTT'} butterfly",
                    limbs=bad, degree=self.degree,
                )


def naive_negacyclic_convolution(a, b, modulus: int) -> np.ndarray:
    """O(N^2) schoolbook product in Z_q[x]/(x^N+1); test oracle for the NTT."""
    a = np.asarray(a, dtype=object)
    b = np.asarray(b, dtype=object)
    n = a.shape[0]
    out = [0] * n
    for i in range(n):
        ai = int(a[i])
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            prod = ai * int(b[j])
            if k < n:
                out[k] = (out[k] + prod) % modulus
            else:
                out[k - n] = (out[k - n] - prod) % modulus
    return np.array(out, dtype=np.uint64)
