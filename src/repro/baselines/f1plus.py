"""F1+: the scaled-up F1 baseline the paper compares against (Sec. 8).

F1+ is F1 [25] grown to CraterLake's budget: 32 compute clusters of 256
lanes (8,192 lanes total - 2x CraterLake's NTT throughput and ~2.4x its
multiply/add throughput), a 256 MB scratchpad, and a crossbar network with
2x CraterLake's peak bandwidth (57 TB/s) that its residue-polynomial tiling
needs.  It lacks CraterLake's CRB, vector chaining and KSHGen, and (being a
vector multicore) pays per-cluster register-file port limits on the simple
operations that dominate boosted keyswitching.

Per the paper, F1+ gets the best keyswitching algorithm at every level:
standard below L ~ 14, boosted above - `repro.core.cost.keyswitch_cost`
implements exactly that policy for CRB-less machines.

Expressed as a :class:`ChipConfig`, F1+ runs through the same simulator and
the same op streams as CraterLake, so every difference in results traces to
the architectural parameters above.
"""

from __future__ import annotations

from repro.core.config import ChipConfig
from repro.core.simulator import SimResult, simulate
from repro.ir import Program

CLUSTERS = 32
CLUSTER_LANES = 256
# Per-cluster banked register file: one full vector op (2 reads + 1
# write) sustained per cycle - enough for F1's NTT-heavy standard
# keyswitching, far too little for boosted keyswitching's 6L^2 simple ops
# ("over 100 register file ports" would be needed, Sec. 2.5).
PORTS_PER_CLUSTER = 3


def f1plus_config() -> ChipConfig:
    return ChipConfig(
        name="F1+",
        lanes=CLUSTERS * CLUSTER_LANES,
        lane_groups=CLUSTERS,
        register_file_mb=256.0,          # 32-bank scratchpad + cluster RFs
        rf_ports=CLUSTERS * PORTS_PER_CLUSTER,
        rf_port_width=CLUSTER_LANES,
        ntt_units=1,                     # 1 per cluster x 8,192 lanes:
        mul_units=3,                     #   2x CraterLake NTT throughput
        add_units=3,                     #   ~2.4x CraterLake mul/add
        aut_units=1,
        crb=False,                       # no CRB...
        chaining=False,                  # ...no chaining...
        kshgen=False,                    # ...full hints from memory...
        fixed_network=False,             # ...crossbar + residue tiling,
        network_words_per_cycle_factor=2,  # 57 TB/s peak (2x CraterLake)
        network_efficiency=0.55,         # switched fabric, all-to-all
    )


F1PLUS = f1plus_config()


def simulate_f1plus(program: Program) -> SimResult:
    return simulate(program, F1PLUS)
