"""Comparison systems: the F1+ accelerator and the 32-core CPU (Sec. 8)."""

from repro.baselines.cpu import CpuModel, cpu_seconds
from repro.baselines.f1plus import F1PLUS, f1plus_config, simulate_f1plus

__all__ = [
    "CpuModel",
    "cpu_seconds",
    "F1PLUS",
    "f1plus_config",
    "simulate_f1plus",
]
