"""Analytic CPU baseline: the paper's 32-core Threadripper PRO 3975WX.

The CPU runs the same op streams through an operation-count model: modular
multiplies and adds at a sustained multicore rate, plus main-memory traffic
for operands that fall out of the last-level cache.  The single throughput
constant is calibrated so that fully packed bootstrapping lands at the
paper's measured 17.2 s (Sec. 8, Table 3); every other benchmark's CPU time
then *emerges* from its op counts, which is the honest way to reproduce
Table 3's CPU column without the authors' machine.

Calibration sanity: 32 cores x 3.5 GHz at ~6.5 cycles per modular
multiply (Lattigo's vectorized Barrett arithmetic, loads included) gives
~17e9 modmuls/s - the fitted value is in exactly that range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ChipConfig
from repro.core.cost import op_cost
from repro.ir import INPUT, OUTPUT, Program

# Fitted against the paper's packed-bootstrapping CPU time (17.2 s);
# consistent with Lattigo's vectorized Barrett arithmetic sustaining ~5-6
# cycles per 64-bit modular multiply-accumulate across 32 cores.
MODMULS_PER_SECOND = 17.0e9
# Adds ride mostly in the multipliers' shadow on superscalar cores.
ADD_WEIGHT = 0.15
# Effective DRAM bandwidth for streaming operands (8-channel DDR4).
DRAM_BYTES_PER_SECOND = 120e9

# Software has no KSHGen unit but does implement seeded hints (HElib [32]);
# still, all hint *applications* read expanded hints from DRAM.
_CPU_COST_CONFIG = ChipConfig(
    name="cpu-cost", kshgen=False, crb=True, chaining=True,
    max_degree=1 << 20,
)


@dataclass
class CpuModel:
    """Op-count execution model; see module docstring for calibration."""

    modmuls_per_second: float = MODMULS_PER_SECOND
    add_weight: float = ADD_WEIGHT
    dram_bytes_per_second: float = DRAM_BYTES_PER_SECOND
    bytes_per_word: float = 8.0  # software keeps residues in uint64

    def seconds(self, program: Program) -> float:
        mults = 0.0
        adds = 0.0
        stream_words = 0.0
        for op in program.ops:
            if op.kind in (INPUT, OUTPUT):
                stream_words += 2 * program.degree * op.level
                continue
            cost = op_cost(_CPU_COST_CONFIG, op, program.degree)
            mults += cost.scalar_mults
            adds += cost.scalar_adds
            # Hints and plaintexts blow out the LLC; charge their streaming.
            stream_words += cost.hint_words
        compute = (mults + self.add_weight * adds) / self.modmuls_per_second
        memory = stream_words * self.bytes_per_word / self.dram_bytes_per_second
        # Multicore FHE kernels overlap streaming poorly; take the sum of
        # the bandwidth-bound and compute-bound parts, weighted.
        return compute + 0.5 * memory


def cpu_seconds(program: Program) -> float:
    return CpuModel().seconds(program)
