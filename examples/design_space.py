"""Architectural design-space exploration with the machine model.

What the simulator is *for*: vary the machine, watch the evaluation
change.  Sweeps register-file capacity (Fig. 11), toggles the paper's
feature ablations (Table 4), and prices each configuration with the area
model (Table 2) - a downstream architect's workflow on a new FHE design
point.

    python examples/design_space.py
"""

from repro import ChipConfig, benchmark, simulate, total_area
from repro.analysis import format_table


def storage_sweep(program):
    rows = []
    base_ms = simulate(program, ChipConfig()).milliseconds
    for mb in (100, 150, 200, 256, 300):
        cfg = ChipConfig().with_register_file(mb)
        res = simulate(program, cfg)
        rows.append([f"{mb} MB", f"{res.milliseconds:.2f}",
                     f"{base_ms / res.milliseconds:.2f}x",
                     f"{total_area(cfg):.0f}"])
    print(format_table(
        ["register file", "time ms", "speedup vs 256MB", "chip mm^2"],
        rows, title=f"\nOn-chip storage sweep ({program.name}, Fig. 11)",
    ))


def feature_ablations(program):
    base = ChipConfig()
    base_ms = simulate(program, base).milliseconds
    rows = [["CraterLake (full)", f"{base_ms:.2f}", "1.0x",
             f"{total_area(base):.0f}"]]
    for label, cfg in (
        ("without KSHGen", base.without_kshgen()),
        ("without CRB + chaining", base.without_crb_chaining()),
        ("crossbar network + residue tiling", base.with_crossbar_network()),
    ):
        res = simulate(program, cfg)
        rows.append([label, f"{res.milliseconds:.2f}",
                     f"{res.milliseconds / base_ms:.1f}x",
                     f"{total_area(cfg):.0f}"])
    print(format_table(
        ["configuration", "time ms", "slowdown", "chip mm^2"],
        rows, title=f"\nFeature ablations ({program.name}, Table 4)",
    ))


def main():
    program = benchmark("packed_bootstrap")
    print(f"workload: {program.name} "
          f"({len(program)} ops, {program.keyswitch_count()} keyswitches)")
    storage_sweep(program)
    feature_ablations(program)
    print("\nTakeaway: the CRB + chaining are worth more than an order of"
          "\nmagnitude; storage below ~200 MB starves deep workloads; the"
          "\nfixed network does the crossbar's job at 1/16th the area.")


if __name__ == "__main__":
    main()
