"""Architectural design-space exploration with the machine model.

What the simulator is *for*: vary the machine, watch the evaluation
change.  Sweeps register-file capacity (Fig. 11), toggles the paper's
feature ablations (Table 4), and prices each configuration with the area
model (Table 2) - a downstream architect's workflow on a new FHE design
point.

Every simulated point runs under its own obs collector tagged with the
sweep name and config knobs (``obs.collecting(sweep=..., ...)``), so the
batch of collectors is self-describing: no side-channel bookkeeping
mapping "collector #3" back to "the 150 MB point".  The closing summary
groups counters by those tags.

    python examples/design_space.py
"""

from repro import ChipConfig, benchmark, obs, simulate, total_area
from repro.analysis import format_table

# One tagged collector per simulated configuration, in sweep order.
COLLECTORS: list[obs.Collector] = []


def traced_simulate(program, cfg, **meta):
    """Simulate under a fresh collector tagged with this config's knobs."""
    with obs.collecting(workload=program.name, **meta) as collector:
        res = simulate(program, cfg)
    COLLECTORS.append(collector)
    return res


def storage_sweep(program):
    rows = []
    base_ms = traced_simulate(program, ChipConfig(), sweep="storage",
                              register_file_mb=256).milliseconds
    for mb in (100, 150, 200, 256, 300):
        cfg = ChipConfig().with_register_file(mb)
        res = traced_simulate(program, cfg, sweep="storage",
                              register_file_mb=mb)
        rows.append([f"{mb} MB", f"{res.milliseconds:.2f}",
                     f"{base_ms / res.milliseconds:.2f}x",
                     f"{total_area(cfg):.0f}"])
    print(format_table(
        ["register file", "time ms", "speedup vs 256MB", "chip mm^2"],
        rows, title=f"\nOn-chip storage sweep ({program.name}, Fig. 11)",
    ))


def feature_ablations(program):
    base = ChipConfig()
    base_ms = traced_simulate(program, base, sweep="ablation",
                              config="full").milliseconds
    rows = [["CraterLake (full)", f"{base_ms:.2f}", "1.0x",
             f"{total_area(base):.0f}"]]
    for label, cfg in (
        ("without KSHGen", base.without_kshgen()),
        ("without CRB + chaining", base.without_crb_chaining()),
        ("crossbar network + residue tiling", base.with_crossbar_network()),
    ):
        res = traced_simulate(program, cfg, sweep="ablation", config=label)
        rows.append([label, f"{res.milliseconds:.2f}",
                     f"{res.milliseconds / base_ms:.1f}x",
                     f"{total_area(cfg):.0f}"])
    print(format_table(
        ["configuration", "time ms", "slowdown", "chip mm^2"],
        rows, title=f"\nFeature ablations ({program.name}, Table 4)",
    ))


def tagged_summary():
    """Per-tag counter roll-up straight from the collectors' meta."""
    rows = []
    for c in COLLECTORS:
        point = ", ".join(f"{k}={v}" for k, v in c.meta.items()
                          if k not in ("workload", "sweep"))
        rows.append([
            str(c.meta.get("sweep", "?")), point,
            f"{int(c.counters.get('sim.ops', 0))}",
            f"{int(c.counters.get('sim.rf_evictions', 0))}",
            f"{int(c.counters.get('sim.chain_hits', 0))}",
        ])
    print(format_table(
        ["sweep", "config", "sim ops", "RF evictions", "chain hits"],
        rows, title="\nPer-config collector roll-up (grouped by meta tags)",
    ))


def main():
    program = benchmark("packed_bootstrap")
    print(f"workload: {program.name} "
          f"({len(program)} ops, {program.keyswitch_count()} keyswitches)")
    storage_sweep(program)
    feature_ablations(program)
    tagged_summary()
    print("\nTakeaway: the CRB + chaining are worth more than an order of"
          "\nmagnitude; storage below ~200 MB starves deep workloads; the"
          "\nfixed network does the crossbar's job at 1/16th the area.")


if __name__ == "__main__":
    main()
