"""Encrypted logistic-regression inference, end to end.

The HELR/LSTM benchmarks boil down to this kernel: an encrypted input
vector, a (plaintext) weight matrix applied with the BSGS diagonal method,
and a polynomial sigmoid - all on ciphertext.  The server never sees the
data; the client decrypts only the final scores.

    python examples/encrypted_inference.py
"""

import numpy as np

from repro import CkksContext, CkksParams
from repro.fhe.linear import LinearTransform
from repro.fhe.polyeval import evaluate_polynomial

# Degree-7 polynomial approximation of the sigmoid on [-4, 4] (HELR [36]).
SIGMOID_COEFFS = [0.5, 0.2166, 0.0, -0.0077, 0.0, 0.00011, 0.0, -5.6e-7]


def sigmoid_poly(x):
    return np.polynomial.polynomial.polyval(x, np.asarray(SIGMOID_COEFFS))


def main():
    rng = np.random.default_rng(5)
    params = CkksParams(degree=512, max_level=10, seed=6)
    ctx = CkksContext(params)
    sk = ctx.keygen()
    relin = ctx.relin_hint(sk)
    n = params.slots

    # A "model": one weight row per output class, packed as a matrix.
    classes = 8
    weights = np.zeros((n, n))
    weights[:classes, :16] = rng.normal(size=(classes, 16)) * 0.4
    features = np.zeros(n)
    features[:16] = rng.normal(size=16) * 0.5

    print("client: encrypting feature vector...")
    ct = ctx.encrypt_values(sk, features)

    print("server: weights @ encrypted(x) via BSGS diagonals...")
    transform = LinearTransform(ctx, weights)
    hints = {r: ctx.rotation_hint(sk, r)
             for r in transform.required_rotations()}
    print(f"        ({transform.rotation_count()} rotations for "
          f"{len(transform.diagonals)} live diagonals)")
    scores_ct = transform.apply(ct, hints)

    print("server: sigmoid via degree-7 polynomial on ciphertext...")
    probs_ct = evaluate_polynomial(ctx, scores_ct, SIGMOID_COEFFS, relin)
    print(f"        (result at level {probs_ct.level} of "
          f"{params.max_level})")

    print("client: decrypting...")
    got = ctx.decrypt(sk, probs_ct)[:classes].real
    want = sigmoid_poly(weights[:classes] @ features)
    print(f"\n{'class':>5}  {'encrypted':>10}  {'plaintext':>10}  {'error':>9}")
    for i, (g, w) in enumerate(zip(got, want)):
        print(f"{i:>5}  {g:>10.5f}  {w:>10.5f}  {abs(g - w):>9.2e}")
    assert np.max(np.abs(got - want)) < 1e-2
    print("\nencrypted inference matches the plaintext computation.")


if __name__ == "__main__":
    main()
