"""Unbounded encrypted computation: the paper's headline capability.

A level-1 CKKS ciphertext cannot absorb a single further multiplication.
In **strict** mode (the default reliability policy) the library says so:
the multiply raises ``NoiseBudgetExhaustedError`` instead of silently
decrypting to garbage.  In **degrade** mode the context repairs the
situation itself - it bootstraps whenever the budget runs out and keeps
going, which is Fig. 2 of the paper executed for real at toy parameters
(takes ~1 minute).  The auto-inserted bootstraps are visible in the obs
counters and the exported Chrome trace.

The closing act runs the same kind of long chain under fault injection:
a transient bit flip lands mid-computation, the sealed-ciphertext
checksums catch it, and :class:`~repro.reliability.RecoveringExecutor`
rolls back to the last checkpoint and replays - the final answer is
bit-identical to the fault-free run.

    python examples/unbounded_computation.py
"""

import time

import numpy as np

from repro import Bootstrapper, CkksContext, CkksParams, obs
from repro.reliability import NoiseBudgetExhaustedError, ReliabilityPolicy
from repro.reliability.recovery import RecoveringExecutor, RecoveryPolicy


def main():
    params = CkksParams(degree=512, max_level=19, digits=1,
                        secret_hamming=16, seed=11)
    ctx = CkksContext(params)
    sk = ctx.keygen()
    print(f"context: N={params.degree}, chain of {params.max_level} "
          f"28-bit moduli, 1-digit boosted keyswitching")

    n = params.slots
    values = np.full(n, 0.02)
    ct = ctx.encrypt_values(sk, values, level=1)
    expected = values.copy()
    factor = np.full(n, 1.1)
    print(f"\nstart: level {ct.level} (multiplicative budget EXHAUSTED)")

    # -- strict mode: the failure is loud, typed, and actionable ------------
    try:
        ctx.pmult(ct, factor)
    except NoiseBudgetExhaustedError as err:
        print(f"strict mode refuses the multiply:\n  {err}")

    # -- degrade mode: the context bootstraps for us ------------------------
    t0 = time.time()
    ctx.policy = ReliabilityPolicy(mode="degrade")
    ctx.set_bootstrapper(Bootstrapper(ctx, sk))
    print(f"\nbootstrapper registered in {time.time() - t0:.1f}s; "
          "switching the context to 'degrade' mode")

    target_mults = 12
    t0 = time.time()
    with obs.collecting() as collector:
        for _ in range(target_mults):
            ct = ctx.pmult(ct, factor)  # no explicit bootstrap anywhere
            expected = expected * factor
        err = np.max(np.abs(ctx.decrypt(sk, ct) - expected))
    elapsed = time.time() - t0

    boots = int(collector.counters.get("reliability.auto_bootstrap", 0))
    print(f"performed {target_mults} sequential multiplications in "
          f"{elapsed:.1f}s (max err {err:.1e})")
    print(f"the context auto-inserted {boots} bootstraps "
          f"(counter reliability.auto_bootstrap), ending at level {ct.level}")

    spans = collector.span_totals().get("reliability.auto_bootstrap")
    if spans:
        count, seconds = spans
        print(f"trace shows {count} auto-bootstrap spans "
              f"totalling {seconds:.1f}s")

    print("\na ciphertext that started with budget for zero multiplies "
          "ran arbitrarily deep -")
    print("computation depth is unbounded, exactly the paper's claim.")

    recovery_demo()


def recovery_demo():
    """A transient fault mid-chain: detect, roll back, replay, match."""
    print("\n-- fault recovery " + "-" * 54)
    params = CkksParams(degree=128, max_level=4, digits=1,
                        secret_hamming=8, seed=7)
    ctx = CkksContext(params, policy=ReliabilityPolicy(checksums=True))
    sk = ctx.keygen()
    rot = ctx.rotation_hint(sk, 1)

    rng = np.random.default_rng(0)
    start = {name: ctx.snapshot(ctx.encrypt_values(
                 sk, 0.5 * rng.standard_normal(ctx.params.slots)))
             for name in ("acc", "base")}

    def fresh():
        return {name: ctx.restore(snap) for name, snap in start.items()}

    def rot_step(c, s):
        s["acc"] = c.rotate(s["acc"], 1, rot)

    def add_step(c, s):
        s["acc"] = c.add(s["acc"], s["base"])

    steps = [(f"op{i}", rot_step if i % 2 == 0 else add_step)
             for i in range(8)]

    # Fault-free reference.
    reference = fresh()
    for _, fn in steps:
        fn(ctx, reference)

    # Same chain, but a cosmic ray flips one limb word at step 5.
    fired = []

    def faulty_step(c, s):
        if not fired:
            fired.append(True)
            s["acc"].c0.data[0, 3] ^= np.uint64(1 << 17)
        add_step(c, s)

    trial = list(steps)
    trial[5] = ("op5", faulty_step)

    exe = RecoveringExecutor(ctx, RecoveryPolicy(checkpoint_every=2))
    state, stats = exe.run(trial, fresh())

    exact = (np.array_equal(state["acc"].c0.data, reference["acc"].c0.data)
             and np.array_equal(state["acc"].c1.data,
                                reference["acc"].c1.data))
    print(f"injected 1 transient bit flip at step 5 of {len(steps)}")
    print(f"detected {stats.detections} fault(s), rolled back "
          f"{stats.rollbacks} time(s), replayed {stats.replayed_ops} op(s) "
          f"from the step-{4} checkpoint")
    print(f"final ciphertext bit-identical to the fault-free run: {exact}")
    print("the chain self-healed: unbounded computation survives transient "
          "hardware faults.")


if __name__ == "__main__":
    main()
