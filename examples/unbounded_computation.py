"""Unbounded encrypted computation: the paper's headline capability.

A level-1 CKKS ciphertext cannot absorb a single further multiplication.
This example keeps multiplying anyway - by bootstrapping whenever the
budget runs out - and verifies the result against the plaintext
computation.  This is Fig. 2 of the paper, executed for real at toy
parameters (takes ~1 minute).

    python examples/unbounded_computation.py
"""

import time

import numpy as np

from repro import Bootstrapper, CkksContext, CkksParams


def main():
    params = CkksParams(degree=512, max_level=15, digits=1,
                        secret_hamming=16, seed=11)
    ctx = CkksContext(params)
    sk = ctx.keygen()
    print(f"context: N={params.degree}, chain of {params.max_level} "
          f"28-bit moduli, 1-digit boosted keyswitching")

    t0 = time.time()
    bootstrapper = Bootstrapper(ctx, sk)
    print(f"bootstrapper ready in {time.time() - t0:.1f}s "
          f"({bootstrapper.keyswitch_count()} keyswitches per refresh, "
          f"{bootstrapper.levels_consumed()} levels consumed)")

    n = params.slots
    values = np.full(n, 0.02)
    ct = ctx.encrypt_values(sk, values, level=1)
    expected = values.copy()
    print(f"\nstart: level {ct.level} (multiplicative budget EXHAUSTED)")

    factor = np.full(n, 1.1)
    total_mults = 0
    for round_idx in range(3):
        t0 = time.time()
        ct = bootstrapper.bootstrap(ct)
        print(f"round {round_idx + 1}: bootstrapped to level {ct.level} "
              f"in {time.time() - t0:.1f}s", end="")
        mults = 0
        while ct.level > 1:  # spend the refreshed budget
            ct = ctx.pmult(ct, factor)
            expected = expected * factor
            mults += 1
        total_mults += mults
        err = np.max(np.abs(ctx.decrypt(sk, ct) - expected))
        print(f", then multiplied {mults}x down to level {ct.level} "
              f"(max err {err:.1e})")

    print(f"\nperformed {total_mults} sequential multiplications on a "
          "ciphertext that started with budget for zero -")
    print("computation depth is unbounded, exactly the paper's claim.")


if __name__ == "__main__":
    main()
