"""Unbounded encrypted computation: the paper's headline capability.

A level-1 CKKS ciphertext cannot absorb a single further multiplication.
In **strict** mode (the default reliability policy) the library says so:
the multiply raises ``NoiseBudgetExhaustedError`` instead of silently
decrypting to garbage.  In **degrade** mode the context repairs the
situation itself - it bootstraps whenever the budget runs out and keeps
going, which is Fig. 2 of the paper executed for real at toy parameters
(takes ~1 minute).  The auto-inserted bootstraps are visible in the obs
counters and the exported Chrome trace.

    python examples/unbounded_computation.py
"""

import time

import numpy as np

from repro import Bootstrapper, CkksContext, CkksParams, obs
from repro.reliability import NoiseBudgetExhaustedError, ReliabilityPolicy


def main():
    params = CkksParams(degree=512, max_level=19, digits=1,
                        secret_hamming=16, seed=11)
    ctx = CkksContext(params)
    sk = ctx.keygen()
    print(f"context: N={params.degree}, chain of {params.max_level} "
          f"28-bit moduli, 1-digit boosted keyswitching")

    n = params.slots
    values = np.full(n, 0.02)
    ct = ctx.encrypt_values(sk, values, level=1)
    expected = values.copy()
    factor = np.full(n, 1.1)
    print(f"\nstart: level {ct.level} (multiplicative budget EXHAUSTED)")

    # -- strict mode: the failure is loud, typed, and actionable ------------
    try:
        ctx.pmult(ct, factor)
    except NoiseBudgetExhaustedError as err:
        print(f"strict mode refuses the multiply:\n  {err}")

    # -- degrade mode: the context bootstraps for us ------------------------
    t0 = time.time()
    ctx.policy = ReliabilityPolicy(mode="degrade")
    ctx.set_bootstrapper(Bootstrapper(ctx, sk))
    print(f"\nbootstrapper registered in {time.time() - t0:.1f}s; "
          "switching the context to 'degrade' mode")

    target_mults = 12
    t0 = time.time()
    with obs.collecting() as collector:
        for _ in range(target_mults):
            ct = ctx.pmult(ct, factor)  # no explicit bootstrap anywhere
            expected = expected * factor
        err = np.max(np.abs(ctx.decrypt(sk, ct) - expected))
    elapsed = time.time() - t0

    boots = int(collector.counters.get("reliability.auto_bootstrap", 0))
    print(f"performed {target_mults} sequential multiplications in "
          f"{elapsed:.1f}s (max err {err:.1e})")
    print(f"the context auto-inserted {boots} bootstraps "
          f"(counter reliability.auto_bootstrap), ending at level {ct.level}")

    spans = collector.span_totals().get("reliability.auto_bootstrap")
    if spans:
        count, seconds = spans
        print(f"trace shows {count} auto-bootstrap spans "
              f"totalling {seconds:.1f}s")

    print("\na ciphertext that started with budget for zero multiplies "
          "ran arbitrarily deep -")
    print("computation depth is unbounded, exactly the paper's claim.")


if __name__ == "__main__":
    main()
