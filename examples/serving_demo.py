"""Multi-tenant encrypted serving, end to end: the `repro.serve` demo.

Eight tenants share one CraterLake-class chip.  Each submits small
scoring queries (a mix of logreg and the deeper lstm kind) that the
front-end packs - up to eight queries per CKKS ciphertext, one 16-slot
block each - and runs through the real homomorphic pipeline under the
full reliability stack.  Along the way this script injects one stubborn
chip fault (persistent enough to defeat in-executor checkpoint replay,
so the serve-level retry with backoff has to absorb it) and lets one
tenant send garbage until its circuit breaker opens.

What to watch in the output:

* the per-tenant table: every honest tenant's queries complete with
  answers matching the plaintext reference; the poison tenant's traffic
  is quarantined (breaker sheds) without touching anyone else;
* the fault line: the injected fault is detected, retried, and the
  affected batch still completes with a bit-clean answer;
* p50/p99: tail latency stays bounded because degradation (smaller,
  eager batches) kicks in before shedding under backlog.

    python examples/serving_demo.py
"""

import numpy as np

from repro.analysis import format_table
from repro.reliability import faults as rfaults
from repro.reliability.errors import ReproError
from repro.serve import ServeConfig, Server
from repro.serve.loadgen import STUBBORN
from repro.workloads.serving import slot_reference

SEED = 7
TENANTS = 8
ROUNDS = 12           # each tenant offers one query per round
POISON = "t7"         # sends NaNs until the breaker quarantines it
FAULT_BATCH = 3       # which dispatch gets the stubborn fault


def make_fault_factory(injector):
    """Arm one stubborn limb fault on FAULT_BATCH's first attempt."""
    def factory(batch_id, attempt, steps):
        if batch_id != FAULT_BATCH or attempt > 0:
            return steps
        fired = [0]
        name, fn = steps[0]

        def faulted(ctx, state):
            if fired[0] < STUBBORN:
                fired[0] += 1
                injector.arm(rfaults.LIMB)
                injector.maybe_corrupt(rfaults.LIMB, state["x"].c0.data)
            fn(ctx, state)

        return [(name, faulted)] + list(steps[1:])
    return factory


def main():
    rng = np.random.default_rng(SEED)
    injector = rfaults.FaultInjector(seed=SEED)
    cfg = ServeConfig(seed=SEED, verify_responses=True)
    server = Server(cfg, fault_factory=make_fault_factory(injector))
    clock = server.clock

    stats = {f"t{i}": {"ok": 0, "shed": 0, "worst": 0.0}
             for i in range(TENANTS)}
    with rfaults.injecting(injector):
        for rnd in range(ROUNDS):
            for i in range(TENANTS):
                tenant = f"t{i}"
                kind = "lstm" if (i + rnd) % 3 == 0 else "logreg"
                payload = rng.uniform(-1, 1, cfg.block_slots)
                if tenant == POISON:
                    payload[0] = np.nan
                try:
                    server.submit(tenant, kind, payload)
                except ReproError:
                    stats[tenant]["shed"] += 1
                clock.advance(3e-5)       # ~33k offered qps
                while server.pump():
                    pass
        # Drain: run the clock forward until the queue empties.
        while server.queue:
            clock.advance_to(server.next_wake(clock.now()))
            while server.pump():
                pass

    # Audit every completed answer against the plaintext reference.
    by_batch = {b.batch_id: b for b in server.batches}
    for resp in server.responses:
        if not resp.ok:
            continue
        batch = by_batch[resp.batch_id]
        vec, layout = server.packer.pack(batch.requests)
        ref = slot_reference(batch.kind, vec, server.weights,
                             cfg.block_slots)
        i = batch.requests.index(resp.request)
        err = abs(resp.value - ref[layout.readout_slot(i)])
        t = stats[resp.request.tenant]
        t["ok"] += 1
        t["worst"] = max(t["worst"], err)

    rows = []
    for tenant in sorted(stats):
        s = stats[tenant]
        breaker = server.breakers.get(tenant)
        rows.append([
            tenant, s["ok"], s["shed"],
            f"{s['worst']:.1e}" if s["ok"] else "-",
            breaker.state if breaker else "closed",
        ])
    print(format_table(
        ["tenant", "completed", "shed", "worst |err|", "breaker"], rows,
        title=f"{TENANTS} tenants sharing one chip "
              f"({ROUNDS} rounds, poison={POISON})"))

    lat = server.latencies()
    p = lambda q: lat[min(len(lat) - 1, int(q * (len(lat) - 1)))] * 1e3
    t = server.tally
    print(f"\nlatency: p50={p(.5):.3f}ms p99={p(.99):.3f}ms "
          f"over {t['completed']} completions")
    print(f"faults: {t['faults_recovered']} recovered in-executor, "
          f"{t['retries']} serve-level retries "
          f"(batch {FAULT_BATCH} survived a stubborn limb fault)")
    print(f"shed: {t['shed']} total "
          f"(invalid={t['shed.invalid']}, breaker={t['shed.breaker']})")
    print(f"dispatches: {t['dispatches']} "
          f"({t['degraded_dispatches']} degraded), "
          f"queue peak {server.max_queue_seen}/{cfg.queue_depth}")

    honest = [f"t{i}" for i in range(TENANTS) if f"t{i}" != POISON]
    assert all(stats[t]["worst"] < 1e-3 for t in honest)
    assert server.tally["retries"] >= 1, "the stubborn fault must retry"
    assert stats[POISON]["shed"] > 0, "poison tenant must be shed"
    print("\nall honest tenants served correct answers; "
          "the poison tenant was quarantined.")


if __name__ == "__main__":
    main()
