"""Quickstart: encrypted computation plus the accelerator model.

Runs in a few seconds:

1. build a small CKKS context, encrypt a vector, compute on it
   homomorphically (add, multiply, rotate), and decrypt;
2. simulate the paper's fully packed bootstrapping benchmark on
   CraterLake, F1+ and the CPU model, reproducing the Table 3 row.

    python examples/quickstart.py

With ``--trace out.json`` the whole run executes under the
observability layer (docs/TRACING.md): a Chrome-trace JSON is written
(open it in chrome://tracing or https://ui.perfetto.dev) and a top-N
report plus per-op/aggregate cycle reconciliation are printed.
"""

import argparse

import numpy as np

from repro import (
    ChipConfig,
    CkksContext,
    CkksParams,
    benchmark,
    cpu_seconds,
    f1plus_config,
    obs,
    simulate,
)


def functional_demo():
    print("=== Functional CKKS ===")
    params = CkksParams(degree=512, max_level=6, seed=1)
    ctx = CkksContext(params)
    sk = ctx.keygen()
    relin = ctx.relin_hint(sk)
    rot1 = ctx.rotation_hint(sk, 1)

    values = np.array([0.5, -0.25, 0.125, 1.0])
    ct = ctx.encrypt_values(sk, values)
    print(f"encrypted {len(values)} values into N={params.degree} "
          f"ciphertext at level {ct.level}")

    doubled = ctx.add(ct, ct)
    squared = ctx.rescale(ctx.square(ct, relin))
    rotated = ctx.rotate(ct, 1, rot1)

    for label, result, want in (
        ("x + x", doubled, 2 * values),
        ("x * x", squared, values**2),
        ("rot(x, 1)", rotated, np.roll(np.tile(values, 64), -1)[:4]),
    ):
        got = ctx.decrypt(sk, result)[:4].real
        err = np.max(np.abs(got - np.asarray(want)[:4]))
        print(f"  {label:10s} -> {np.round(got, 4)}  (max err {err:.2e})")


def accelerator_demo():
    print("\n=== CraterLake performance model ===")
    program = benchmark("packed_bootstrap")
    print(f"program: {program.name}, {len(program)} homomorphic ops, "
          f"{program.keyswitch_count()} keyswitches")

    craterlake = simulate(program, ChipConfig())
    f1plus = simulate(program, f1plus_config())
    cpu_s = cpu_seconds(program)

    print(f"  CraterLake : {craterlake.milliseconds:8.2f} ms  "
          f"(FU util {craterlake.fu_utilization():.0%}, "
          f"BW util {craterlake.bandwidth_utilization:.0%}, "
          f"{craterlake.total_traffic_bytes / 1e9:.1f} GB moved)")
    print(f"  F1+        : {f1plus.milliseconds:8.2f} ms  "
          f"({f1plus.milliseconds / craterlake.milliseconds:.1f}x slower)")
    print(f"  CPU        : {cpu_s * 1e3:8.0f} ms  "
          f"({cpu_s / craterlake.seconds:,.0f}x slower)")
    print("paper (Table 3): 3.91 ms, 14.9x, 4,398x")


def traced_run(path: str):
    """Re-run both demos under tracing; write a Chrome trace to ``path``.

    The simulated-op timeline covers a single CraterLake run of the
    packed-bootstrapping benchmark (one machine, so per-op cycles
    reconcile exactly with the aggregate); the functional demo
    contributes the wall-clock spans (NTT, keyswitch).
    """
    from repro.obs import export

    cfg = ChipConfig()
    with obs.collecting() as c:
        functional_demo()
        program = benchmark("packed_bootstrap")
        result = simulate(program, cfg)

    print("\n=== Trace summary (docs/TRACING.md) ===")
    print(export.top_report(c, n=10))
    traced = c.total_op_cycles()
    print(f"\nreconciliation: sum of per-op cycles = {traced:,.0f}, "
          f"SimResult.cycles = {result.cycles:,.0f} "
          f"(delta {abs(traced - result.cycles):.3g})")
    export.write_chrome_trace(c, path, clock_hz=cfg.clock_hz)
    print(f"wrote Chrome trace to {path} - open in chrome://tracing "
          "or https://ui.perfetto.dev")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="enable tracing and write a Chrome-trace JSON to this path",
    )
    cli = parser.parse_args()
    if cli.trace is not None:
        if not cli.trace:
            parser.error("--trace requires a non-empty output path")
        try:
            # Fail fast on an unwritable path, not after the whole run.
            with open(cli.trace, "w"):
                pass
        except OSError as exc:
            parser.error(f"cannot write trace file: {exc}")
        traced_run(cli.trace)
    else:
        functional_demo()
        accelerator_demo()
