#!/usr/bin/env python3
"""Fail on broken intra-repo links in markdown files.

Scans ``[text](target)`` links in the given markdown files (default:
README.md and docs/*.md), resolves each relative target against the
linking file's directory, and exits nonzero listing every target that
does not exist.  External links (http/https/mailto) and pure in-page
anchors (``#section``) are skipped; a ``path#anchor`` target is checked
for the *path* only - anchor rot inside an existing file is out of
scope.  Inline code spans and fenced code blocks are ignored so
documented syntax examples can't false-positive.

Usage::

    python tools/check_docs_links.py [files-or-dirs...]

Run by CI on every push (see .github/workflows/ci.yml) and by
``tests/compiler/test_compile_cache.py::test_repo_docs_links_resolve``
so doc rot fails tier-1 locally too.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE = re.compile(r"^(```|~~~)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_targets(path: Path) -> list[tuple[int, str]]:
    """(line number, link target) pairs outside code fences/spans."""
    targets = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Drop inline code spans so `[x](y)` examples are not links.
        stripped = re.sub(r"`[^`]*`", "", line)
        for match in LINK.finditer(stripped):
            targets.append((lineno, match.group(1)))
    return targets


def broken_links(path: Path) -> list[tuple[int, str]]:
    """Intra-repo link targets of ``path`` that do not resolve."""
    broken = []
    for lineno, target in markdown_targets(path):
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            broken.append((lineno, target))
    return broken


def collect_files(args: list[str]) -> list[Path]:
    if not args:
        args = ["README.md", "docs"]
    files: list[Path] = []
    for arg in args:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.glob("**/*.md")))
        elif p.exists():
            files.append(p)
        else:
            print(f"check_docs_links: no such file: {arg}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv: list[str]) -> int:
    failures = 0
    for path in collect_files(argv):
        for lineno, target in broken_links(path):
            print(f"{path}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"{failures} broken intra-repo link(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
